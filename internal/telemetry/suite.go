package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"falcon/internal/sim"
)

// Suite bundles the telemetry of one instrumented experiment run: a
// metric registry plus any number of named time-series samplers. The
// experiment registers instruments and starts samplers; the harness
// (cmd/falconbench) snapshots the registry into the -metrics report and
// writes each sampler to a CSV under the -series directory.
type Suite struct {
	reg      *Registry
	names    []string
	samplers []*Sampler
}

// NewSuite returns an empty suite.
func NewSuite() *Suite { return &Suite{reg: NewRegistry()} }

// Registry returns the suite's metric registry.
func (s *Suite) Registry() *Registry { return s.reg }

// Sampler creates, registers and returns a named sampler ticking every
// interval on the given simulator. Names must be unique within the suite;
// they become CSV file names (sanitized).
func (s *Suite) Sampler(name string, sm *sim.Simulator, interval time.Duration) *Sampler {
	sp := NewSampler(sm, interval)
	s.names = append(s.names, name)
	s.samplers = append(s.samplers, sp)
	return sp
}

// Snapshot captures the registry at virtual time at.
func (s *Suite) Snapshot(at sim.Time) Snapshot { return s.reg.Snapshot(at) }

// SamplerCount returns the number of registered samplers.
func (s *Suite) SamplerCount() int { return len(s.samplers) }

// WriteSeries writes every sampler to <dir>/<prefix>_<name>.csv, creating
// dir if needed, and returns the paths written (sorted by registration
// order, which is deterministic for a deterministic experiment).
func (s *Suite) WriteSeries(dir, prefix string) ([]string, error) {
	if len(s.samplers) == 0 {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for i, sp := range s.samplers {
		name := sanitizeFileName(prefix + "_" + s.names[i] + ".csv")
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return paths, err
		}
		werr := sp.WriteCSV(f)
		cerr := f.Close()
		if werr != nil {
			return paths, fmt.Errorf("writing %s: %w", path, werr)
		}
		if cerr != nil {
			return paths, cerr
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// sanitizeFileName keeps series file names portable: path separators and
// spaces become underscores.
func sanitizeFileName(name string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ' ', ':':
			return '_'
		}
		return r
	}, name)
}
