package core_test

import (
	"runtime"
	"testing"

	"falcon/internal/core"
	"falcon/internal/netsim"
	"falcon/internal/sim"
)

// TestTransportSteadyStateAllocs is the end-to-end allocation gate the
// zero-alloc hot path is held to: after a warmup that brings every pool,
// free list, dense table, and timing-wheel bucket to steady-state
// capacity, a closed-loop window of mixed push/pull transactions — the
// full PDL/TL/NIC/fabric round trip — must run effectively allocation-
// free. The bound is a small fraction of an allocation per operation
// rather than exactly zero because the wheel occasionally regrows a
// bucket when timer deadlines cross epoch boundaries; a regression that
// reintroduces even one per-packet or per-transaction allocation
// overshoots it by 50x (measured steady state is ~0.016 allocs/op).
// `make perfcheck` runs this.
func TestTransportSteadyStateAllocs(t *testing.T) {
	s := sim.New(1)
	topo, _ := netsim.PointToPoint(s, netsim.LinkConfig{GbpsRate: 100, PropDelay: sim.Microsecond})
	cl := core.NewCluster(s)
	a := cl.AddNode(topo.Hosts[0], core.DefaultNodeConfig())
	b := cl.AddNode(topo.Hosts[1], core.DefaultNodeConfig())
	epA, epB := cl.Connect(a, b, core.DefaultConnConfig())
	epB.SetTarget(benchTarget{})

	const window = 16
	const opBytes = 4096
	issued, completed, inFlight, limit := 0, 0, 0, 0
	var pump func()
	done := func(_ []byte, err error) {
		if err != nil {
			t.Fatalf("transaction error: %v", err)
		}
		inFlight--
		completed++
		pump()
	}
	pump = func() {
		for inFlight < window && issued < limit {
			var err error
			if issued%2 == 0 {
				_, err = epA.Push(nil, opBytes, done)
			} else {
				_, err = epA.Pull(opBytes, done)
			}
			if err != nil {
				return // backpressure: the Xon callback re-pumps
			}
			inFlight++
			issued++
		}
	}
	epA.TL().SetXonCallback(pump)

	runOps := func(n int) {
		limit += n
		pump()
		s.RunUntil(s.Now().Add(3600 * sim.Second))
		if completed != limit {
			t.Fatalf("completed %d of %d ops", completed, limit)
		}
	}

	runOps(20000) // warm everything to capacity

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const measured = 40000
	runOps(measured)
	runtime.ReadMemStats(&after)

	perOp := float64(after.Mallocs-before.Mallocs) / measured
	t.Logf("steady state: %.4f allocs/op, %.1f B/op over %d ops",
		perOp, float64(after.TotalAlloc-before.TotalAlloc)/measured, measured)
	if perOp > 0.02 {
		t.Fatalf("transport hot path allocates: %.4f allocs/op, want <= 0.02", perOp)
	}
}
