// Quickstart: bring up two Falcon-equipped hosts on a simulated 100G
// point-to-point fabric, run RDMA Writes, Reads and atomics between them
// with real payload bytes, and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"falcon/internal/core"
	"falcon/internal/netsim"
	"falcon/internal/rdma"
	"falcon/internal/sim"
)

func main() {
	// 1. Build the fabric: two hosts joined by one switch.
	s := sim.New(42)
	link := netsim.LinkConfig{GbpsRate: 100, PropDelay: time.Microsecond}
	topo, _ := netsim.PointToPoint(s, link)

	// 2. Attach a Falcon node (NIC model + resources + FAE) to each host
	// and connect them with an ordered multipath Falcon connection.
	cl := core.NewCluster(s)
	a := cl.AddNode(topo.Hosts[0], core.DefaultNodeConfig())
	b := cl.AddNode(topo.Hosts[1], core.DefaultNodeConfig())
	epA, epB := cl.Connect(a, b, core.DefaultConnConfig())

	// 3. Wrap the endpoints in RDMA RC queue pairs; register memory at B.
	qa := rdma.NewQP(epA, rdma.Config{})
	qb := rdma.NewQP(epB, rdma.Config{})
	remote := make([]byte, 1<<20)
	qb.RegisterMemory(remote)

	// 4. RDMA WRITE 64KB into B's memory.
	payload := bytes.Repeat([]byte("falcon!!"), 8192) // 64KB
	writeDone := sim.Time(0)
	if err := qa.Write(1, 4096, payload, 0, func(c rdma.Completion) {
		if c.Err != nil {
			log.Fatalf("write failed: %v", c.Err)
		}
		writeDone = s.Now()
	}); err != nil {
		log.Fatal(err)
	}
	s.Run()
	fmt.Printf("WRITE  64KB completed at t=%-12v (payload intact: %v)\n",
		writeDone, bytes.Equal(remote[4096:4096+len(payload)], payload))

	// 5. RDMA READ it back.
	var readBack []byte
	start := s.Now()
	if err := qa.Read(2, 4096, len(payload), func(c rdma.Completion) {
		if c.Err != nil {
			log.Fatalf("read failed: %v", c.Err)
		}
		readBack = c.Data
	}); err != nil {
		log.Fatal(err)
	}
	s.Run()
	fmt.Printf("READ   64KB completed in %-12v (round-tripped: %v)\n",
		s.Now().Sub(start), bytes.Equal(readBack, payload))

	// 6. Atomic fetch-and-add on a remote counter.
	start = s.Now()
	if err := qa.FetchAdd(3, 0, 7, func(c rdma.Completion) {
		if c.Err != nil {
			log.Fatalf("fetch-add failed: %v", c.Err)
		}
	}); err != nil {
		log.Fatal(err)
	}
	s.Run()
	fmt.Printf("ATOMIC fetch-add completed in %v\n", s.Now().Sub(start))

	// 7. Show the transport's own accounting.
	fmt.Printf("\ntransport stats (initiator side):\n")
	fmt.Printf("  data packets sent:  %d\n", epA.PDL().Stats.DataSent)
	fmt.Printf("  retransmissions:    %d\n", epA.PDL().Stats.DataRetransmits)
	fmt.Printf("  acks received:      %d\n", epA.PDL().Stats.AcksReceived)
	fmt.Printf("  effective window:   %.1f packets\n", epA.PDL().EffectiveWindow())
	fmt.Printf("  transactions ok:    %d\n", epA.TL().Stats.CompletedOK)
	fmt.Printf("target side:\n")
	fmt.Printf("  delivered to ULP:   %d packets\n", epB.PDL().Stats.DeliveredToTL)
	fmt.Printf("  acks sent:          %d\n", epB.PDL().Stats.AcksSent)
}
