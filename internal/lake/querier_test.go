package lake

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"falcon/internal/stats"
)

// synthIndex builds a small index from in-memory artifacts: one
// metrics run with a spread of values plus one series.
func synthIndex(t *testing.T) *Index {
	t.Helper()
	b := NewBuilder()
	var sb strings.Builder
	sb.WriteString(`{"schema":"falconmetrics/v1","quick":true,"figures":[{"name":"figX","metrics":{"at_ns":0,"metrics":[`)
	for i := 0; i < 100; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"name":"figX/sub%d/pdl/lat_ns","value":%d}`, i, (i+1)*100)
	}
	sb.WriteString(`,{"name":"figX/sub0/pdl/data_sent","value":7}]}}]}`)
	if err := b.IngestMetricsJSON("r1", strings.NewReader(sb.String()), "synth.json"); err != nil {
		t.Fatal(err)
	}
	csv := "t_ns,conn/fcwnd,fwd/queue_drops\n0,16,0\n1000,20,1\n2000,24,1\n3000,28,3\n"
	if err := b.IngestSeriesCSV("r1", "s1", strings.NewReader(csv), "s1.csv"); err != nil {
		t.Fatal(err)
	}
	ix, err := b.Seal()
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestQuerierSelectAndLookup(t *testing.T) {
	q := NewQuerier(synthIndex(t))

	if v, ok := q.Lookup("r1", "figX/sub0/pdl/data_sent"); !ok || v != 7 {
		t.Fatalf("Lookup = %v, %v", v, ok)
	}
	if _, ok := q.Lookup("nope", "figX/sub0/pdl/data_sent"); ok {
		t.Fatal("Lookup on missing run should fail")
	}

	all := q.Select("r1", "figX/*/pdl/lat_ns")
	if len(all) != 100 {
		t.Fatalf("Select matched %d cells, want 100", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Path >= all[i].Path {
			t.Fatal("Select output not sorted")
		}
	}
	one := q.Select("r1", "figX/sub42/**")
	if len(one) != 1 || one[0].Value != 4300 {
		t.Fatalf("Select sub42 = %+v", one)
	}
	if got := q.Select("r1", "**/does_not_exist"); got != nil {
		t.Fatalf("empty selection should be nil, got %v", got)
	}
}

// TestQuerierSummary checks the aggregate against the exact values and
// the histogram contract: p50/p99 match a directly-fed
// internal/stats.Histogram over the same samples.
func TestQuerierSummary(t *testing.T) {
	q := NewQuerier(synthIndex(t))
	s := q.Summary("r1", "figX/*/pdl/lat_ns")
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Min != 100 || s.Max != 10000 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.Mean != 5050 {
		t.Fatalf("Mean = %v", s.Mean)
	}
	var h stats.Histogram
	for i := 0; i < 100; i++ {
		h.Record(uint64((i + 1) * 100))
	}
	if s.P50 != float64(h.Quantile(50)) || s.P99 != float64(h.Quantile(99)) {
		t.Fatalf("P50/P99 = %v/%v, want %v/%v", s.P50, s.P99, h.Quantile(50), h.Quantile(99))
	}
}

func TestQuerierSeries(t *testing.T) {
	q := NewQuerier(synthIndex(t))

	if names := q.SeriesNames("r1"); !reflect.DeepEqual(names, []string{"s1"}) {
		t.Fatalf("SeriesNames = %v", names)
	}

	ts, vs, ok := q.SeriesSlice("r1", "s1", "conn/fcwnd", 0, -1)
	if !ok || !reflect.DeepEqual(ts, []int64{0, 1000, 2000, 3000}) ||
		!reflect.DeepEqual(vs, []float64{16, 20, 24, 28}) {
		t.Fatalf("full slice = %v %v %v", ts, vs, ok)
	}

	ts, vs, _ = q.SeriesSlice("r1", "s1", "conn/fcwnd", 1000, 2000)
	if !reflect.DeepEqual(ts, []int64{1000, 2000}) || !reflect.DeepEqual(vs, []float64{20, 24}) {
		t.Fatalf("bounded slice = %v %v", ts, vs)
	}

	if _, _, ok := q.SeriesSlice("r1", "s1", "no/such_col", 0, -1); ok {
		t.Fatal("missing column should fail")
	}
	if _, _, ok := q.SeriesSlice("r1", "nope", "conn/fcwnd", 0, -1); ok {
		t.Fatal("missing series should fail")
	}

	sum, ok := q.SeriesSummary("r1", "s1", "fwd/queue_drops")
	if !ok || sum.Count != 4 || sum.Max != 3 || sum.Min != 0 {
		t.Fatalf("SeriesSummary = %+v, %v", sum, ok)
	}
}
