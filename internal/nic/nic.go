// Package nic models the Falcon hardware pipeline constraints of §5: the
// packet-processing pipeline that bounds op rate (per-connection and
// aggregate), the connection-state cache whose misses dominate latency at
// high connection counts (Figure 21), and the host interface (PCIe) whose
// bandwidth bounds delivery to host memory and backs up the RX packet
// buffer (Figure 14).
//
// The model is deliberately simple: each packet pass through the NIC incurs
// a start time constrained by per-connection and global pipeline
// availability plus a connection-cache lookup cost. The same model serves
// the RoCE baseline with different constants (host-memory connection state
// instead of on-NIC DRAM).
package nic

import (
	"container/list"
	"time"

	"falcon/internal/sim"
)

// Config parameterizes the NIC model.
type Config struct {
	// PerConnPacketInterval is the pipeline's per-connection
	// serialization: one connection cannot process packets faster than
	// one per interval (25ns ≈ 20M 2-packet ops/s on one QP).
	PerConnPacketInterval time.Duration
	// GlobalPacketInterval is the aggregate pipeline limit across all
	// connections (~4.2ns ≈ 120M 2-packet ops/s).
	GlobalPacketInterval time.Duration

	// Connection-state cache hierarchy (§5.2 "Connection State Caching").
	CacheSize   int           // on-chip first-level entries
	L2CacheSize int           // shared second-level entries
	HitCost     time.Duration // first-level hit
	L2HitCost   time.Duration // second-level hit
	MissCost    time.Duration // backing store (on-NIC DRAM or host memory)

	// HostGbps is the host interface (PCIe) bandwidth for payload
	// delivery to memory.
	HostGbps float64
	// RxBufferBytes is the on-chip RX packet buffer (O(BDP), §5.2);
	// payload awaiting host delivery occupies it. Overflow spills to
	// on-NIC DRAM (allowed, with extra latency) rather than dropping.
	RxBufferBytes int
	// DRAMSpillLatency is added to host delivery for bytes that spilled.
	DRAMSpillLatency time.Duration
}

// DefaultConfig models the 200G Falcon IPU.
func DefaultConfig() Config {
	return Config{
		PerConnPacketInterval: 25 * time.Nanosecond,
		GlobalPacketInterval:  4 * time.Nanosecond,
		CacheSize:             16 << 10,
		L2CacheSize:           128 << 10,
		HitCost:               5 * time.Nanosecond,
		L2HitCost:             40 * time.Nanosecond,
		MissCost:              250 * time.Nanosecond, // on-NIC DRAM
		HostGbps:              200,
		RxBufferBytes:         1280 << 10, // 1.25MB ≈ BDP at 200G, 50us
		DRAMSpillLatency:      500 * time.Nanosecond,
	}
}

// CX7LikeConfig models a conventional RNIC whose connection state lives in
// host memory: far costlier misses (Figure 21's ~3x RTT cliff).
func CX7LikeConfig() Config {
	cfg := DefaultConfig()
	cfg.CacheSize = 8 << 10
	cfg.L2CacheSize = 0
	cfg.MissCost = 1200 * time.Nanosecond // host memory over PCIe
	return cfg
}

// Stats counts NIC-level activity.
type Stats struct {
	PacketsProcessed uint64
	CacheHits        uint64
	L2Hits           uint64
	CacheMisses      uint64
	HostBytes        uint64
	SpilledBytes     uint64
	MaxRxOccupancy   float64
	// GlobalWait and ConnWait attribute pipeline admission delay to the
	// aggregate pipe vs per-connection serialization (diagnostics).
	GlobalWait time.Duration
	ConnWait   time.Duration
}

// NIC is one NIC instance's pipeline model.
type NIC struct {
	sim *sim.Simulator
	cfg Config

	globalFree sim.Time
	// connFree and connDone are indexed by connection ID. Connection IDs
	// are dense small integers assigned by core.Cluster, so a grown-on-
	// demand slice replaces the former map: the per-packet admission path
	// does two array loads instead of two map probes. connDone enforces
	// in-order completion per connection: a cheap lookup must not let a
	// later packet finish before an earlier one.
	connFree []sim.Time
	connDone []sim.Time

	cache   *connCache
	l2cache *connCache

	// Host interface state.
	hostFree  sim.Time
	rxQueued  int // bytes awaiting host delivery
	rxSpilled int // bytes currently spilled to DRAM

	// hostEvents is the free list of pooled host-delivery completions.
	hostEvents *hostEvent

	Stats Stats
}

// New creates a NIC bound to the simulator.
func New(s *sim.Simulator, cfg Config) *NIC {
	n := &NIC{sim: s, cfg: cfg}
	if cfg.CacheSize > 0 {
		n.cache = newConnCache(cfg.CacheSize)
	}
	if cfg.L2CacheSize > 0 {
		n.l2cache = newConnCache(cfg.L2CacheSize)
	}
	return n
}

// connSlot returns &slice[conn], growing the slice as connections appear.
func connSlot(s *[]sim.Time, conn uint32) *sim.Time {
	if int(conn) >= len(*s) {
		grown := make([]sim.Time, int(conn)+16)
		copy(grown, *s)
		*s = grown
	}
	return &(*s)[conn]
}

// lookupCost models the connection-state fetch for one packet.
func (n *NIC) lookupCost(conn uint32) time.Duration {
	if n.cache == nil {
		return n.cfg.HitCost
	}
	if n.cache.touch(conn) {
		n.Stats.CacheHits++
		return n.cfg.HitCost
	}
	if n.l2cache != nil && n.l2cache.touch(conn) {
		n.Stats.L2Hits++
		n.cache.insert(conn)
		return n.cfg.L2HitCost
	}
	n.Stats.CacheMisses++
	n.cache.insert(conn)
	if n.l2cache != nil {
		n.l2cache.insert(conn)
	}
	return n.cfg.MissCost
}

// admit runs the pipeline admission bookkeeping for one packet of conn and
// returns the virtual time its processing completes.
func (n *NIC) admit(conn uint32) sim.Time {
	now := n.sim.Now()
	// The global pipe admits packets at its own cadence; a connection
	// whose private pipeline is busy must not hold the global cursor
	// back (or, worse, drag it forward to its own future readiness).
	gStart := now
	if n.globalFree > gStart {
		n.Stats.GlobalWait += n.globalFree.Sub(gStart)
		gStart = n.globalFree
	}
	n.globalFree = gStart.Add(n.cfg.GlobalPacketInterval)
	// Per-connection serialization applies after global admission.
	start := gStart
	cf := connSlot(&n.connFree, conn)
	if *cf > start {
		n.Stats.ConnWait += cf.Sub(start)
		start = *cf
	}
	cost := n.lookupCost(conn)
	done := start.Add(cost)
	cd := connSlot(&n.connDone, conn)
	if done < *cd {
		done = *cd
	}
	*cd = done
	*cf = start.Add(n.cfg.PerConnPacketInterval)
	n.Stats.PacketsProcessed++
	return done
}

// Process schedules fn after the NIC pipeline has processed one packet for
// conn: per-connection and global serialization plus the connection-state
// lookup. Used for both TX and RX passes.
func (n *NIC) Process(conn uint32, fn func()) {
	n.sim.At(n.admit(conn), fn)
}

// ProcessAction is Process with a typed callback: per-packet callers keep
// the path allocation-free by scheduling a pooled sim.Action instead of a
// capture closure. Admission bookkeeping and delivery order are identical
// to Process.
func (n *NIC) ProcessAction(conn uint32, a sim.Action) {
	n.sim.AtAction(n.admit(conn), a)
}

// DeliverToHost models payload DMA to host memory at HostGbps. The bytes
// occupy the RX packet buffer until drained; occupancy beyond the SRAM
// capacity spills to DRAM with extra latency but is never dropped (§5.2
// "Falcon HW also allows packet buffers to overflow ... to external on-NIC
// DRAM"). done fires when the payload has landed in host memory.
func (n *NIC) DeliverToHost(bytes int, done func()) {
	if bytes <= 0 {
		if done != nil {
			done()
		}
		return
	}
	now := n.sim.Now()
	n.rxQueued += bytes
	spilled := false
	if n.rxQueued > n.cfg.RxBufferBytes {
		spilled = true
		n.rxSpilled += bytes
		n.Stats.SpilledBytes += uint64(bytes)
	}
	if occ := n.RxOccupancy(); occ > n.Stats.MaxRxOccupancy {
		n.Stats.MaxRxOccupancy = occ
	}
	start := now
	if n.hostFree > start {
		start = n.hostFree
	}
	drain := time.Duration(float64(bytes) * 8 / n.cfg.HostGbps) // ns
	finish := start.Add(drain)
	if spilled {
		finish = finish.Add(n.cfg.DRAMSpillLatency)
	}
	n.hostFree = finish
	n.Stats.HostBytes += uint64(bytes)
	ev := n.hostEvents
	if ev == nil {
		ev = &hostEvent{n: n}
	} else {
		n.hostEvents = ev.next
	}
	ev.bytes, ev.spilled, ev.done = bytes, spilled, done
	n.sim.AtAction(finish, ev)
}

// hostEvent is the pooled completion of one DeliverToHost transfer. The
// common caller (core's payload DMA) passes done == nil, so recycling the
// event makes host delivery allocation-free.
type hostEvent struct {
	n       *NIC
	bytes   int
	spilled bool
	done    func()
	next    *hostEvent
}

func (ev *hostEvent) RunAction() {
	n := ev.n
	n.rxQueued -= ev.bytes
	if ev.spilled {
		n.rxSpilled -= ev.bytes
	}
	done := ev.done
	ev.done = nil
	ev.next = n.hostEvents
	n.hostEvents = ev
	if done != nil {
		done()
	}
}

// RxOccupancy returns the RX packet-buffer occupancy as a fraction of SRAM
// capacity, clamped to 1 (spilled bytes keep it pinned at 1). This is the
// ncwnd congestion signal.
func (n *NIC) RxOccupancy() float64 {
	if n.cfg.RxBufferBytes <= 0 {
		return 0
	}
	occ := float64(n.rxQueued) / float64(n.cfg.RxBufferBytes)
	if occ > 1 {
		occ = 1
	}
	return occ
}

// SetHostGbps changes host-interface bandwidth at runtime (the PCIe
// downgrade of Figure 14).
func (n *NIC) SetHostGbps(gbps float64) {
	if gbps <= 0 {
		panic("nic: host bandwidth must be positive")
	}
	n.cfg.HostGbps = gbps
}

// HostGbps returns the current host-interface bandwidth.
func (n *NIC) HostGbps() float64 { return n.cfg.HostGbps }

// connCache is an LRU set of connection IDs. Membership is a dense slice
// indexed by connection ID (IDs are small cluster-assigned integers), so
// the per-packet touch is an array load rather than a map probe.
type connCache struct {
	capacity int
	ll       *list.List
	items    []*list.Element
}

func newConnCache(capacity int) *connCache {
	return &connCache{capacity: capacity, ll: list.New()}
}

func (c *connCache) slot(conn uint32) **list.Element {
	if int(conn) >= len(c.items) {
		grown := make([]*list.Element, int(conn)+16)
		copy(grown, c.items)
		c.items = grown
	}
	return &c.items[conn]
}

// touch reports whether conn is cached, refreshing recency.
func (c *connCache) touch(conn uint32) bool {
	if int(conn) < len(c.items) {
		if el := c.items[conn]; el != nil {
			c.ll.MoveToFront(el)
			return true
		}
	}
	return false
}

// insert adds conn, evicting the LRU entry if needed.
func (c *connCache) insert(conn uint32) {
	slot := c.slot(conn)
	if el := *slot; el != nil {
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.capacity {
		back := c.ll.Back()
		if back != nil {
			c.ll.Remove(back)
			c.items[back.Value.(uint32)] = nil
		}
	}
	*slot = c.ll.PushFront(conn)
}
