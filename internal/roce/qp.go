package roce

import (
	"time"

	"falcon/internal/netsim"
	"falcon/internal/sim"
)

// endpoint is either side of a QP.
type endpoint interface {
	handle(p *packet)
}

// Connect establishes an RC QP between a client (requester) and server
// (responder) node. The returned QP issues Write/Send/Read operations; the
// Responder exposes delivery counters.
func Connect(client, server *Node, id uint32, cfg Config) (*QP, *Responder) {
	if cfg.MTU <= 0 {
		cfg.MTU = 4096
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 128
	}
	if cfg.RTO <= 0 {
		cfg.RTO = 500 * time.Microsecond
	}
	qp := &QP{
		node: client, cfg: cfg, id: id, dst: server.host.ID,
		rateGbps: cfg.LinkGbps,
		reqPkts:  make(map[uint32]*txPkt),
		respWait: make(map[uint32]*op),
		respBuf:  make(map[uint32]*packet),
	}
	// Bind the timer callbacks once: evaluating a method value (q.pump,
	// q.onRTO, q.sendProbe) allocates a closure at each use, and the pump
	// and timer paths run per packet.
	qp.pumpFn = qp.pump
	qp.onRTOFn = qp.onRTO
	qp.sendProbeFn = qp.sendProbe
	if qp.rateGbps <= 0 {
		qp.rateGbps = cfg.CC.MaxRateGbps
	}
	r := &Responder{
		node: server, cfg: cfg, id: id, dst: client.host.ID,
		reqBuf:   make(map[uint32]*packet),
		respPkts: make(map[uint32]*txPkt),
		respOf:   make(map[uint32][2]uint32),
	}
	qp.resp = r
	client.qps[id] = qp
	server.qps[id] = r
	return qp, r
}

// op is one outstanding IB Verbs operation.
type op struct {
	kind      OpKind
	totalPkts int
	ackedPkts int
	done      func()
}

// txPkt is one tracked transmitted packet.
type txPkt struct {
	pkt *packet
	op  *op
}

// QP is the requester side.
type QP struct {
	node *Node
	cfg  Config
	id   uint32
	dst  netsim.NodeID
	resp *Responder

	// Request stream sender state.
	nextPSN uint32
	una     uint32 // lowest unacked
	reqPkts map[uint32]*txPkt
	sendQ   []*txPkt

	// Read response receiver state.
	expectedResp uint32
	respAlloc    uint32
	respWait     map[uint32]*op     // predicted resp PSN -> op
	respBuf      map[uint32]*packet // SR/AR out-of-order responses
	respNakArmed bool

	// Rate-based CC.
	rateGbps   float64
	nextSend   sim.Time
	probeTimer sim.Timer
	lastDecr   sim.Time

	rtoTimer     sim.Timer
	pumpTimer    sim.Timer
	lastProgress sim.Time

	// Bound method values (see Connect): timer callbacks without per-arm
	// closure allocations.
	pumpFn      func()
	onRTOFn     func()
	sendProbeFn func()

	// Stats
	Stats struct {
		DataSent     uint64
		Retransmits  uint64
		RTOs         uint64
		NaksReceived uint64
		ReadBytes    uint64
		OpsCompleted uint64
	}
}

// RateGbps returns the current RTTCC sending rate.
func (q *QP) RateGbps() float64 { return q.rateGbps }

// Write posts an RDMA WRITE of size bytes.
func (q *QP) Write(size int, done func()) { q.postData(ptWrite, size, done) }

// Send posts an RDMA SEND of size bytes.
func (q *QP) Send(size int, done func()) { q.postData(ptSend, size, done) }

func (q *QP) postData(t pktType, size int, done func()) {
	nseg := segmentCount(size, q.cfg.MTU)
	o := &op{kind: OpWrite, totalPkts: nseg, done: done}
	if t == ptSend {
		o.kind = OpSend
	}
	// One slab of packets and one of trackers per op, rather than two
	// allocations per segment. The objects are still fresh per op — packets
	// ride the fabric as frame payloads and may be referenced by in-flight
	// duplicates long after the op completes, so they are never recycled.
	pkts := make([]packet, nseg)
	tps := make([]txPkt, nseg)
	off := 0
	for i := 0; i < nseg; i++ {
		seg := segmentAt(size, off, q.cfg.MTU)
		pkts[i] = packet{Type: t, QP: q.id, Size: seg, Stream: streamReq}
		tps[i] = txPkt{op: o, pkt: &pkts[i]}
		q.sendQ = append(q.sendQ, &tps[i])
		off += seg
	}
	q.pump()
}

// Read posts an RDMA READ of size bytes: one single-packet request per MTU
// chunk, each soliciting one response packet.
func (q *QP) Read(size int, done func()) {
	nseg := segmentCount(size, q.cfg.MTU)
	o := &op{kind: OpRead, totalPkts: nseg, done: done}
	pkts := make([]packet, nseg)
	tps := make([]txPkt, nseg)
	off := 0
	for i := 0; i < nseg; i++ {
		seg := segmentAt(size, off, q.cfg.MTU)
		pkts[i] = packet{Type: ptReadReq, QP: q.id, Size: 16, RespPSNs: 1, RespBytes: seg, Stream: streamReq}
		tps[i] = txPkt{op: o, pkt: &pkts[i]}
		q.sendQ = append(q.sendQ, &tps[i])
		off += seg
	}
	q.pump()
}

// segmentCount is how many MTU segments size bytes need (at least one).
func segmentCount(size, mtu int) int {
	if size <= 0 {
		return 1
	}
	return (size + mtu - 1) / mtu
}

// segmentAt is the size of the segment starting at byte offset off.
func segmentAt(size, off, mtu int) int {
	seg := size - off
	if seg > mtu {
		seg = mtu
	}
	if seg < 0 {
		seg = 0
	}
	return seg
}

// outstanding counts unacked request packets plus unreceived solicited
// response packets.
func (q *QP) outstanding() int {
	return int(q.nextPSN-q.una) + int(q.respAlloc-q.expectedResp)
}

// pump transmits queued packets subject to the window and the RTTCC rate.
func (q *QP) pump() {
	now := q.node.sim.Now()
	for len(q.sendQ) > 0 {
		if q.outstanding() >= q.cfg.WindowSize {
			return // ack-clocked
		}
		if q.nextSend > now {
			if !q.pumpTimer.Pending() {
				q.pumpTimer = q.node.sim.At(q.nextSend, q.pumpFn)
			}
			return
		}
		tp := q.sendQ[0]
		q.sendQ = q.sendQ[1:]
		p := tp.pkt
		p.PSN = q.nextPSN
		q.nextPSN++
		q.reqPkts[p.PSN] = tp
		if p.Type == ptReadReq {
			// Predict the response PSNs this request will elicit.
			for i := uint32(0); i < p.RespPSNs; i++ {
				q.respWait[q.respAlloc] = tp.op
				q.respAlloc++
			}
		}
		q.transmit(p, false)
	}
}

// transmit sends (or retransmits) one request-stream packet.
func (q *QP) transmit(p *packet, retx bool) {
	if retx {
		q.Stats.Retransmits++
	} else {
		q.Stats.DataSent++
	}
	// Pace at the CC rate.
	wire := headerBytes + p.Size
	gap := time.Duration(float64(wire) * 8 / q.rateGbps)
	now := q.node.sim.Now()
	if q.nextSend < now {
		q.nextSend = now
	}
	q.nextSend = q.nextSend.Add(gap)
	q.node.send(q.dst, p, q.pathHash(p))
	q.armTimers()
}

// pathHash returns the ECMP hash: fixed per QP (RoCE has no multipath
// protocol support), except AR mode where the switch sprays adaptively.
func (q *QP) pathHash(p *packet) uint64 {
	if q.cfg.Mode == AR {
		return q.node.sim.Rand().Uint64()
	}
	return uint64(q.id)<<20 | 0x5a5a
}

func (q *QP) armTimers() {
	if q.outstanding() == 0 {
		q.rtoTimer.Stop()
		q.probeTimer.Stop()
		return
	}
	if !q.rtoTimer.Pending() {
		q.rtoTimer = q.node.sim.After(q.cfg.RTO, q.onRTOFn)
	}
	if !q.probeTimer.Pending() && q.cfg.CC.ProbeInterval > 0 {
		q.probeTimer = q.node.sim.After(q.cfg.CC.ProbeInterval, q.sendProbeFn)
	}
}

func (q *QP) sendProbe() {
	if q.outstanding() == 0 {
		return
	}
	q.node.send(q.dst, &packet{Type: ptProbe, QP: q.id, T1: int64(q.node.sim.Now())}, q.pathHash(nil))
	q.probeTimer = q.node.sim.After(q.cfg.CC.ProbeInterval, q.sendProbeFn)
}

// onRTO is the timeout path: collapse the rate and go-back-N from the
// lowest unacked request (all modes; AR has no other recovery signal).
func (q *QP) onRTO() {
	if q.outstanding() == 0 {
		return
	}
	q.Stats.RTOs++
	q.rateGbps = maxf(q.cfg.CC.MinRateGbps, q.rateGbps/2)
	for psn := q.una; psn != q.nextPSN; psn++ {
		if tp, ok := q.reqPkts[psn]; ok {
			q.transmit(tp.pkt, true)
		}
	}
	// Re-solicit missing read responses by retransmitting their
	// requests (covered above since requests stay unacked until their
	// responses... requests are acked separately; covered by reqPkts).
	q.rtoTimer.Stop()
	q.armTimers()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// handle processes packets arriving at the requester.
func (q *QP) handle(p *packet) {
	switch p.Type {
	case ptAck:
		q.handleAck(p)
	case ptNak:
		q.handleNak(p)
	case ptReadResp:
		q.handleReadResp(p)
	case ptProbeResp:
		q.handleProbeResp(p)
	}
}

func (q *QP) handleAck(p *packet) {
	progressed := false
	for q.una < p.AckPSN && q.una != q.nextPSN {
		tp, ok := q.reqPkts[q.una]
		if ok {
			delete(q.reqPkts, q.una)
			if tp.op.kind != OpRead { // reads complete on response data
				tp.op.ackedPkts++
				if tp.op.ackedPkts == tp.op.totalPkts {
					q.Stats.OpsCompleted++
					if tp.op.done != nil {
						tp.op.done()
					}
				}
			}
		}
		q.una++
		progressed = true
	}
	if progressed {
		q.lastProgress = q.node.sim.Now()
		q.rtoTimer.Stop()
		q.armTimers()
		q.pump()
	}
}

func (q *QP) handleNak(p *packet) {
	q.Stats.NaksReceived++
	if p.Stream == streamResp {
		// Client NAKs about responses are handled at the server; a NAK
		// arriving here names a missing *request* PSN.
		return
	}
	switch q.cfg.Mode {
	case SR:
		// Retransmit exactly the missing request packet... but SR only
		// covers Writes; for Sends/ReadReqs the responder asked for a
		// rewind.
		if tp, ok := q.reqPkts[p.NakPSN]; ok {
			if tp.pkt.Type == ptWrite {
				q.transmit(tp.pkt, true)
				return
			}
		}
		q.goBackN(p.NakPSN)
	default: // GBN (AR never NAKs)
		q.goBackN(p.NakPSN)
	}
}

// goBackN retransmits every unacked request from psn.
func (q *QP) goBackN(psn uint32) {
	for s := psn; s != q.nextPSN; s++ {
		if tp, ok := q.reqPkts[s]; ok {
			q.transmit(tp.pkt, true)
		}
	}
}

// handleReadResp processes an arriving read-response packet with the
// mode's ordering semantics.
func (q *QP) handleReadResp(p *packet) {
	switch {
	case p.PSN == q.expectedResp:
		q.acceptResp(p)
		q.respNakArmed = false
		// Drain buffered responses.
		for {
			nxt, ok := q.respBuf[q.expectedResp]
			if !ok {
				break
			}
			delete(q.respBuf, q.expectedResp)
			q.acceptResp(nxt)
		}
		// Ack response progress so the responder can garbage-collect
		// retransmission state.
		q.node.send(q.dst, &packet{Type: ptAck, QP: q.id, AckPSN: q.expectedResp}, q.pathHash(nil))
		q.pump()
	case p.PSN < q.expectedResp:
		// Duplicate; ignore.
	default: // gap in the response stream
		switch q.cfg.Mode {
		case SR:
			// Read responses are SR-capable: buffer and NAK the
			// missing one.
			q.respBuf[p.PSN] = p
			q.sendRespNak()
		case AR:
			q.respBuf[p.PSN] = p // tolerate; recover by RTO
		default: // GBN: drop OOO, NAK once per episode
			if !q.respNakArmed {
				q.respNakArmed = true
				q.sendRespNak()
			}
		}
	}
	q.lastProgress = q.node.sim.Now()
}

// acceptResp consumes one in-order response packet.
func (q *QP) acceptResp(p *packet) {
	if o, ok := q.respWait[q.expectedResp]; ok {
		delete(q.respWait, q.expectedResp)
		q.Stats.ReadBytes += uint64(p.Size)
		o.ackedPkts++
		if o.ackedPkts == o.totalPkts {
			q.Stats.OpsCompleted++
			if o.done != nil {
				o.done()
			}
		}
	}
	q.expectedResp++
	q.rtoTimer.Stop()
	q.armTimers()
}

func (q *QP) sendRespNak() {
	q.node.send(q.dst, &packet{
		Type: ptNak, QP: q.id, Stream: streamResp, NakPSN: q.expectedResp,
	}, q.pathHash(nil))
}

// handleProbeResp folds one RTT probe into the RTTCC rate.
func (q *QP) handleProbeResp(p *packet) {
	now := q.node.sim.Now()
	rtt := now.Sub(sim.Time(p.T1))
	cc := q.cfg.CC
	if rtt <= cc.TargetRTT {
		q.rateGbps += cc.AIGbps
	} else if now.Sub(q.lastDecr) >= cc.ProbeInterval {
		q.rateGbps *= cc.MD
		q.lastDecr = now
	}
	if q.rateGbps > cc.MaxRateGbps {
		q.rateGbps = cc.MaxRateGbps
	}
	if q.rateGbps < cc.MinRateGbps {
		q.rateGbps = cc.MinRateGbps
	}
}
