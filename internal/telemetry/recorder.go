package telemetry

import (
	"fmt"
	"strings"

	"falcon/internal/falcon/pdl"
	"falcon/internal/falcon/tl"
	"falcon/internal/falcon/wire"
	"falcon/internal/netsim"
	"falcon/internal/sim"
)

// Record is one flight-recorder entry: a fixed-width, pointer-free
// encoding of a protocol event so the ring can be overwritten forever
// without allocating or retaining packets.
type Record struct {
	At   sim.Time
	Tag  byte // see the Tag* constants
	Type uint8
	Conn uint32
	PSN  uint32
	RSN  uint64
	Aux  uint64
}

// Flight-recorder tags, one per instrumented hook.
const (
	TagSend    = 'S' // PDL data (re)transmission; Aux=1 for retransmits
	TagReceive = 'R' // PDL packet fully processed
	TagServed  = 'V' // TL request reached terminal processing
	TagDone    = 'C' // TL completion released; Aux=1 on error
	TagFrame   = 'F' // wire frame delivered at NIC ingress; Aux=frame size
)

// Recorder is a fixed-size ring buffer of recent Records. It implements
// pdl.Probe and tl.Probe and provides a netsim tap, so one recorder can
// shadow the trace hasher on every hook. Recording overwrites
// preallocated slots — zero allocations, no behaviour change — and the
// ring is dumped only when something goes wrong: testkit wires it so any
// invariant violation or sweep panic prints the last N records
// (sweep.go), turning "assertion failed at t=1.2ms" into a readable
// event history.
type Recorder struct {
	clock sim.Clock
	ring  []Record
	total uint64 // records ever written; ring[total % len] is next slot
}

// DefaultRecorderDepth is the ring size testkit uses.
const DefaultRecorderDepth = 64

// NewRecorder creates a recorder keeping the most recent depth records.
func NewRecorder(clock sim.Clock, depth int) *Recorder {
	if depth <= 0 {
		depth = DefaultRecorderDepth
	}
	return &Recorder{clock: clock, ring: make([]Record, depth)}
}

// Record appends one entry, overwriting the oldest when full.
func (r *Recorder) Record(tag byte, typ uint8, conn, psn uint32, rsn, aux uint64) {
	r.ring[r.total%uint64(len(r.ring))] = Record{
		At:   r.clock.Now(),
		Tag:  tag,
		Type: typ,
		Conn: conn,
		PSN:  psn,
		RSN:  rsn,
		Aux:  aux,
	}
	r.total++
}

// Total returns how many records have ever been written (≥ len(ring) once
// the ring has wrapped).
func (r *Recorder) Total() uint64 { return r.total }

// OnSend implements pdl.Probe.
func (r *Recorder) OnSend(c *pdl.Conn, p *wire.Packet, retransmit bool) {
	var aux uint64
	if retransmit {
		aux = 1
	}
	r.Record(TagSend, uint8(p.Type), c.ID(), p.PSN, p.RSN, aux)
}

// OnReceive implements pdl.Probe.
func (r *Recorder) OnReceive(c *pdl.Conn, p *wire.Packet) {
	r.Record(TagReceive, uint8(p.Type), c.ID(), p.PSN, p.RSN, 0)
}

// OnRequestServed implements tl.Probe.
func (r *Recorder) OnRequestServed(c *tl.Conn, rsn uint64) {
	r.Record(TagServed, 0, c.ID(), 0, rsn, 0)
}

// OnCompletion implements tl.Probe.
func (r *Recorder) OnCompletion(c *tl.Conn, rsn uint64, err error) {
	var aux uint64
	if err != nil {
		aux = 1
	}
	r.Record(TagDone, 0, c.ID(), 0, rsn, aux)
}

// TapFrame is a netsim host tap (install with Host.SetTap).
func (r *Recorder) TapFrame(f *netsim.Frame) {
	if p, ok := f.Payload.(*wire.Packet); ok {
		r.Record(TagFrame, uint8(p.Type), p.ConnID, p.PSN, p.RSN, uint64(f.Size))
		return
	}
	r.Record(TagFrame, 0, 0, 0, 0, uint64(f.Size))
}

// Snapshot returns the retained records oldest-first. It allocates and is
// meant for dumps and tests, not hot paths.
func (r *Recorder) Snapshot() []Record {
	n := r.total
	depth := uint64(len(r.ring))
	if n > depth {
		n = depth
	}
	out := make([]Record, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.ring[(r.total-n+i)%depth])
	}
	return out
}

// DumpString renders the retained records oldest-first, one per line, for
// inclusion in failure messages.
func (r *Recorder) DumpString() string {
	recs := r.Snapshot()
	if len(recs) == 0 {
		return "flight recorder: empty\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder (last %d of %d records):\n", len(recs), r.total)
	for _, rec := range recs {
		fmt.Fprintf(&b, "  t=%-14v %c conn=%-3d type=%-2d psn=%-8d rsn=%-6d aux=%d\n",
			rec.At, rec.Tag, rec.Conn, rec.Type, rec.PSN, rec.RSN, rec.Aux)
	}
	return b.String()
}
