GO ?= go

.PHONY: all build test short race sweep fuzz vet bench metrics perfcheck ci

all: build vet test perfcheck

build:
	$(GO) build ./...

# Tier-1: full unit + integration suite (sweeps at default breadth).
test:
	$(GO) test ./...

# Quick iteration loop: long simulation sweeps skip or shrink.
short:
	$(GO) test -short ./...

# Race detection, including the parallel falconbench path (the worker pool
# plus a few experiments fanned across 4 goroutines).
race:
	$(GO) test -race ./...
	$(GO) run -race ./cmd/falconbench -quick -parallel 4 -run 'fig18|fig19|fig21|fig22a|fig23' >/dev/null

# Full fault-sweep matrix and determinism checks, verbose.
sweep:
	$(GO) test -v -run 'TestSweep|TestDeterminism|TestExperimentDeterminism' \
		./internal/testkit/ ./internal/experiments/

# Wire-format fuzzing (bounded; remove -fuzztime to run until interrupted).
fuzz:
	$(GO) test -fuzz FuzzUnmarshal -fuzztime 30s ./internal/falcon/wire/

vet:
	$(GO) vet ./...

# Performance baseline: scheduler microbenchmarks (wheel vs heap at 1k/32k/1M
# pending timers), then one quick figure per family with the perf report
# written to BENCH_pr2.json. See DESIGN.md §8 for how to read the numbers.
bench:
	$(GO) test -run NONE -bench 'BenchmarkScheduler' -benchmem ./internal/sim/
	$(GO) run ./cmd/falconbench -quick -json BENCH_pr2.json \
		-run 'fig1|fig10|fig13|fig18|fig20a|fig22b|fig25|table4'

# Regenerate the committed telemetry artifacts: deterministic per-figure
# metric snapshots (BENCH_pr3_metrics.json) and virtual-clock time series
# (BENCH_pr3_series/*.csv) for the loss-recovery, incast and multipath
# figures. Byte-identical across reruns — `git diff` after this target
# should be empty unless behaviour changed. See DESIGN.md §9.
metrics:
	$(GO) run ./cmd/falconbench -quick -run 'fig10|fig13|fig15' \
		-metrics BENCH_pr3_metrics.json -series BENCH_pr3_series

# Fast-path regression gate: the zero-alloc assertions on the fabric hot
# path (port send, switch forward, host deliver, AtAction dispatch) plus
# the two trace-hash equivalence suites — wheel-vs-heap schedulers and
# pooled-vs-legacy allocation — over the short sweep matrix. Fails if the
# per-frame path regains an allocation or any fast-path rebuild becomes
# visible to the protocol. See DESIGN.md §10.
perfcheck:
	$(GO) test -run 'ZeroAlloc' -v ./internal/netsim/ ./internal/sim/
	$(GO) test -short -run 'TestSweepSchedulerEquivalence|TestSweepPoolEquivalence' \
		./internal/testkit/

# Regenerate every table at full measurement windows (several minutes).
bench-full:
	$(GO) run ./cmd/falconbench

.PHONY: bench-full

ci: vet build test race
