// Package core assembles the Falcon stack — NIC pipeline model, Packet
// Delivery Layer, Transaction Layer, and Falcon Adaptive Engine — onto the
// simulated Ethernet fabric of internal/netsim. It is the public entry
// point the ULPs (internal/rdma, internal/nvme), the examples, and every
// benchmark build on.
//
// A Cluster owns one Node per fabric host; Connect establishes a
// bidirectional Falcon connection between two nodes, returning the two
// Endpoints. Each Endpoint exposes its Transaction Layer for issuing
// Push/Pull transactions and its PDL/TL/NIC stats for measurement.
package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"falcon/internal/falcon/fae"
	"falcon/internal/falcon/pdl"
	"falcon/internal/falcon/tl"
	"falcon/internal/falcon/wire"
	"falcon/internal/netsim"
	"falcon/internal/nic"
	"falcon/internal/psp"
	"falcon/internal/sim"
)

// defaultLegacyHotPath selects the transport hot-path implementation for
// clusters that don't choose explicitly (the pattern of
// sim.SetDefaultScheduler): false runs the word-level scoreboard scans,
// dense RSN tables and packet pooling; true restores the per-PSN loops,
// map-backed tables and heap packets as the verification oracle.
var defaultLegacyHotPath atomic.Bool

// SetDefaultLegacyHotPath switches subsequently created clusters between
// the optimized hot path (false, the default) and the legacy oracle
// (true). The two produce byte-identical event traces — enforced by
// internal/testkit's equivalence sweep — so the knob exists for A/B
// verification and benchmarking, not behavior.
func SetDefaultLegacyHotPath(v bool) { defaultLegacyHotPath.Store(v) }

// DefaultLegacyHotPath reports the current process-wide default.
func DefaultLegacyHotPath() bool { return defaultLegacyHotPath.Load() }

// NodeConfig parameterizes one Falcon node (NIC + shared resources + FAE).
type NodeConfig struct {
	NIC       nic.Config
	Resources tl.ResourceConfig
	FAE       fae.Config
	// PSPMasterKey, when set, enables inline encryption (§3.1): every
	// packet this node receives must be PSP-sealed against a key derived
	// from this master key and the connection ID, and packets it sends
	// are sealed against the peer's key. Both endpoints of a connection
	// must have keys configured.
	PSPMasterKey []byte
}

// DefaultNodeConfig returns the 200G-IPU settings.
func DefaultNodeConfig() NodeConfig {
	return NodeConfig{
		NIC:       nic.DefaultConfig(),
		Resources: tl.DefaultResourceConfig(),
		FAE:       fae.DefaultConfig(),
	}
}

// ConnConfig parameterizes one connection (both endpoints).
type ConnConfig struct {
	PDL pdl.Config
	TL  tl.Config
}

// DefaultConnConfig returns an ordered, multipath connection.
func DefaultConnConfig() ConnConfig {
	return ConnConfig{PDL: pdl.DefaultConfig(), TL: tl.DefaultConfig()}
}

// Cluster owns the Falcon nodes attached to one simulated fabric.
type Cluster struct {
	sim        *sim.Simulator
	nodes      map[netsim.NodeID]*Node
	nextConnID uint32
	legacy     bool
}

// NewCluster creates an empty cluster on the simulator.
func NewCluster(s *sim.Simulator) *Cluster {
	cl := &Cluster{sim: s, nodes: make(map[netsim.NodeID]*Node), nextConnID: 1}
	cl.SetLegacyHotPath(defaultLegacyHotPath.Load())
	return cl
}

// SetLegacyHotPath switches this cluster between the optimized transport
// hot path and the legacy oracle (see SetDefaultLegacyHotPath). It must be
// called before nodes and connections are created: the flag is baked into
// each endpoint's PDL/TL configuration.
func (cl *Cluster) SetLegacyHotPath(v bool) {
	cl.legacy = v
	for _, n := range cl.nodes {
		n.pool.SetLegacy(v)
		n.res.SetLegacy(v)
	}
}

// LegacyHotPath reports the cluster's hot-path selection.
func (cl *Cluster) LegacyHotPath() bool { return cl.legacy }

// Sim returns the owning simulator.
func (cl *Cluster) Sim() *sim.Simulator { return cl.sim }

// Endpoints returns every live endpoint in the cluster (measurement
// sweeps), ordered by (host, connection) so callers that fold over it with
// order-sensitive side effects stay deterministic.
func (cl *Cluster) Endpoints() []*Endpoint {
	var out []*Endpoint
	for _, n := range cl.nodes {
		for _, ep := range n.conns {
			out = append(out, ep)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].node.host.ID != out[j].node.host.ID {
			return out[i].node.host.ID < out[j].node.host.ID
		}
		return out[i].id < out[j].id
	})
	return out
}

// AddNode attaches a Falcon node to a fabric host. Each host carries at
// most one node: attaching twice would silently orphan the first node's
// connections.
func (cl *Cluster) AddNode(host *netsim.Host, cfg NodeConfig) *Node {
	if _, dup := cl.nodes[host.ID]; dup {
		panic(fmt.Sprintf("core: host %d already has a Falcon node", host.ID))
	}
	// The node's entire stack — NIC pipeline, FAE, PDL/TL timers, packet
	// pool — lives on the fabric host's partition simulator, so on a
	// sharded run everything a node does executes on its own partition
	// (with the shared group clock and sequence counter, this is the
	// root simulator's exact behaviour in merged mode).
	ns := host.Sim()
	n := &Node{
		cluster: cl,
		host:    host,
		sim:     ns,
		nic:     nic.New(ns, cfg.NIC),
		res:     tl.NewResources(cfg.Resources),
		pool:    wire.NewPacketPool(),
		conns:   make(map[uint32]*Endpoint),
		pspKey:  cfg.PSPMasterKey,
	}
	n.pool.SetLegacy(cl.legacy)
	n.res.SetLegacy(cl.legacy)
	n.engine = fae.New(ns, cfg.FAE, n.applyFAEResponse)
	host.SetHandler(n)
	cl.nodes[host.ID] = n
	return n
}

// Node is one Falcon-equipped machine: the NIC model, the shared on-NIC
// resource pools, the FAE engine, and the connections terminating here.
type Node struct {
	cluster *Cluster
	host    *netsim.Host
	// sim is the fabric host's partition simulator; every timer and
	// continuation of this node's stack is scheduled here. pool recycles
	// this node's transport packets (per node rather than per cluster so
	// the experimental parallel shard mode never shares a free list
	// across partitions; in-flight fabric copies migrate to the receiving
	// node's pool, mirroring netsim's frame-pool rule).
	sim    *sim.Simulator
	pool   *wire.PacketPool
	nic    *nic.NIC
	res    *tl.Resources
	engine *fae.Engine
	conns  map[uint32]*Endpoint
	pspKey []byte

	// Free lists for the per-packet NIC pipeline jobs (TX egress and RX
	// ingress), recycled as they fire.
	txJobs *txJob
	rxJobs *rxJob
}

// Host returns the underlying fabric host.
func (n *Node) Host() *netsim.Host { return n.host }

// NIC returns the node's NIC model (for impairments like PCIe downgrades).
func (n *Node) NIC() *nic.NIC { return n.nic }

// Resources returns the node's shared TL resource pools.
func (n *Node) Resources() *tl.Resources { return n.res }

// Engine returns the node's FAE.
func (n *Node) Engine() *fae.Engine { return n.engine }

// Crash tears down every connection terminating at this node, modeling a
// host crash whose connection state does not survive the restart: each
// endpoint's PDL is declared dead (erroring all pending transactions
// through the TL) and the endpoint is closed, so packets still in flight
// for those connections are dropped as stale on arrival. Peers are NOT
// notified in-band — exactly like a real crash, the remote side discovers
// the death through its own RTO budget. Connections are torn down in
// ascending connection-ID order so the fault is deterministic. Returns the
// number of connections torn down. Freezing the host around the crash
// window (netsim.Host.SetPaused) is the caller's job; a crash whose
// connection state survives is just a pause with no Crash call.
func (n *Node) Crash() int {
	ids := make([]uint32, 0, len(n.conns))
	for id := range n.conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ep := n.conns[id]
		ep.pdl.Fail()
		ep.Close()
	}
	return len(ids)
}

// rxJob is the pooled NIC-ingress pass for one arriving packet: it runs
// after the pipeline's admission delay, hands the packet to the PDL, and
// returns it to the cluster pool (no layer above retains inbound packets —
// holders copy by value; see wire.PacketPool's ownership contract).
type rxJob struct {
	ep   *Endpoint
	pkt  *wire.Packet
	hops int
	next *rxJob
}

func (j *rxJob) RunAction() {
	ep, p, hops := j.ep, j.pkt, j.hops
	n := ep.node
	j.ep, j.pkt = nil, nil
	j.next = n.rxJobs
	n.rxJobs = j
	ep.pdl.HandlePacket(p, hops)
	n.pool.Release(p)
}

// HandleFrame implements netsim.Handler: NIC ingress.
func (n *Node) HandleFrame(f *netsim.Frame) {
	switch payload := f.Payload.(type) {
	case *wire.Packet:
		ep, ok := n.conns[payload.ConnID]
		if !ok {
			// Stale packet for a closed connection: drop, reclaiming
			// the fabric copy.
			n.pool.Release(payload)
			return
		}
		if f.CE {
			payload.Flags |= wire.FlagCE
		}
		j := n.rxJobs
		if j == nil {
			j = &rxJob{}
		} else {
			n.rxJobs = j.next
		}
		j.ep, j.pkt, j.hops = ep, payload, f.Hops
		n.nic.ProcessAction(payload.ConnID, j)
	case sealedFrame:
		ep, ok := n.conns[payload.conn]
		if !ok || ep.rxSA == nil {
			return
		}
		buf, _, err := ep.rxSA.Open(payload.data)
		if err != nil {
			return // authentication failure: drop (the PDL retransmits)
		}
		var p wire.Packet
		if _, err := p.Unmarshal(buf); err != nil {
			return
		}
		if f.CE {
			p.Flags |= wire.FlagCE
		}
		hops := f.Hops
		n.nic.Process(payload.conn, func() { ep.pdl.HandlePacket(&p, hops) })
	}
}

func (n *Node) applyFAEResponse(r fae.Response) {
	ep, ok := n.conns[r.Conn]
	if !ok {
		return
	}
	ep.tl.SetAlpha(r.Alpha)
	ep.pdl.ApplyResponse(r)
}

// txJob is the pooled NIC-egress pass for one outbound packet: after the
// pipeline's admission delay it wraps the in-flight snapshot in a fabric
// frame (sealing it first when PSP is on) and transmits.
type txJob struct {
	ep   *Endpoint
	pkt  *wire.Packet
	next *txJob
}

func (j *txJob) RunAction() {
	ep, cp := j.ep, j.pkt
	n := ep.node
	j.ep, j.pkt = nil, nil
	j.next = n.txJobs
	n.txJobs = j
	frame := n.host.NewFrame()
	frame.Dst = ep.peer
	frame.FlowHash = flowHash(ep.id, cp.FlowLabel)
	frame.Size = cp.WireSize()
	if ep.txSA != nil {
		sealed, err := ep.txSA.Seal(cp.Marshal(nil), pspCryptOffset, 0)
		n.pool.Release(cp)
		if err != nil {
			return
		}
		frame.Payload = sealedFrame{conn: ep.id, data: sealed}
		frame.Size += psp.Overhead
	} else {
		frame.Payload = cp
	}
	n.host.Send(frame)
}

// Endpoint is one side of a Falcon connection.
type Endpoint struct {
	node *Node
	id   uint32
	peer netsim.NodeID

	pdl *pdl.Conn
	tl  *tl.Conn

	// Inline encryption SAs (nil when PSP is off). txSA seals against
	// the peer's device key; rxSA opens packets sealed for this node.
	txSA *psp.SA
	rxSA *psp.SA
}

// sealedFrame is the fabric payload of a PSP-encrypted Falcon packet.
type sealedFrame struct {
	conn uint32
	data []byte
}

// pspCryptOffset leaves the leading header fields (type/flags through the
// flow label) cleartext-but-authenticated so switches can hash on the flow
// label; everything after is encrypted.
const pspCryptOffset = 16

// ID returns the connection ID (shared by both endpoints).
func (e *Endpoint) ID() uint32 { return e.id }

// Node returns the owning node.
func (e *Endpoint) Node() *Node { return e.node }

// Sim returns the simulator driving this endpoint.
func (e *Endpoint) Sim() *sim.Simulator { return e.node.sim }

// TL returns the endpoint's transaction layer, the ULP-facing API.
func (e *Endpoint) TL() *tl.Conn { return e.tl }

// PDL returns the endpoint's packet delivery layer (stats, windows).
func (e *Endpoint) PDL() *pdl.Conn { return e.pdl }

// SetTarget installs the target-side ULP handler.
func (e *Endpoint) SetTarget(h tl.TargetHandler) { e.tl.SetTarget(h) }

// Push initiates a push transaction (≤ MTU).
func (e *Endpoint) Push(data []byte, length uint32, done func([]byte, error)) (uint64, error) {
	return e.tl.Push(data, length, done)
}

// Pull initiates a pull transaction (≤ MTU).
func (e *Endpoint) Pull(length uint32, done func([]byte, error)) (uint64, error) {
	return e.tl.Pull(length, done)
}

// Connect establishes a Falcon connection between nodes a and b with the
// given configuration, returning (a's endpoint, b's endpoint). Both
// endpoints share one connection ID, unique within the cluster.
func (cl *Cluster) Connect(a, b *Node, cfg ConnConfig) (*Endpoint, *Endpoint) {
	if a == b {
		panic("core: cannot connect a node to itself")
	}
	id := cl.nextConnID
	cl.nextConnID++
	epA := newEndpoint(a, id, b.host.ID, cfg)
	epB := newEndpoint(b, id, a.host.ID, cfg)
	if a.pspKey != nil || b.pspKey != nil {
		if a.pspKey == nil || b.pspKey == nil {
			panic("core: PSP requires a master key on both nodes")
		}
		if err := epA.enablePSP(b.pspKey); err != nil {
			panic(err)
		}
		if err := epB.enablePSP(a.pspKey); err != nil {
			panic(err)
		}
	}
	a.conns[id] = epA
	b.conns[id] = epB
	return epA, epB
}

func newEndpoint(n *Node, id uint32, peer netsim.NodeID, cfg ConnConfig) *Endpoint {
	if n.cluster.legacy {
		// The cluster-level oracle switch overrides per-connection
		// selection: a legacy cluster is legacy end to end.
		cfg.PDL.LegacyHotPath = true
		cfg.TL.LegacyHotPath = true
	}
	ep := &Endpoint{node: n, id: id, peer: peer}

	cb := pdl.Callbacks{
		Send: func(p *wire.Packet) {
			// Snapshot the packet at transmission time: the PDL may
			// mutate (or recycle) its copy while this one is in
			// flight. The snapshot is itself a pooled packet, released
			// when the NIC egress job has put it on the wire (PSP) or
			// by the receiving node after delivery (cleartext).
			cp := n.pool.Acquire()
			cp.CopyFrom(p)
			j := n.txJobs
			if j == nil {
				j = &txJob{}
			} else {
				n.txJobs = j.next
			}
			j.ep, j.pkt = ep, cp
			n.nic.ProcessAction(id, j)
		},
		Deliver: func(p *wire.Packet) pdl.DeliverVerdict {
			v := ep.tl.Deliver(p)
			if v.Kind == pdl.DeliverAccept && p.Length > 0 {
				// Payload DMA to host memory occupies the RX
				// buffer until the host interface drains it.
				n.nic.DeliverToHost(int(p.Length), nil)
			}
			return v
		},
		PacketAcked: func(space wire.Space, psn uint32, rsn uint64, typ wire.Type) {
			ep.tl.PacketAcked(space, psn, rsn, typ)
		},
		Completed:    func(rsn uint64) { ep.tl.Completed(rsn) },
		NackReceived: func(p *wire.Packet) { ep.tl.NackReceived(p) },
		Failed:       func(err error) { ep.tl.Fail(err) },
		PostEvent:    func(ev fae.Event) { n.engine.Post(ev) },
		RxBufOccupancy: func() float64 {
			occ := ep.tl.RxOccupancy()
			if nicOcc := n.nic.RxOccupancy(); nicOcc > occ {
				occ = nicOcc
			}
			return occ
		},
		CompletedRSN: func() uint64 { return ep.tl.CompletedRSN() },
	}

	ep.pdl = pdl.NewConn(n.sim, id, cfg.PDL, cb)
	ep.pdl.SetPacketPool(n.pool)
	ep.tl = tl.NewConn(n.sim, id, cfg.TL, n.res, ep.pdl, nil)
	ep.tl.SetPacketPool(n.pool)
	labels := n.engine.RegisterConn(id, cfg.PDL.NumFlows)
	ep.pdl.SetFlowLabels(labels)
	return ep
}

// enablePSP installs the endpoint's security associations: transmit
// against the peer device's key, receive against this device's key. The
// PDL tolerates reordering above this layer, so the receive SA's replay
// window is disabled (multipath reorders legitimately).
func (e *Endpoint) enablePSP(peerKey []byte) error {
	tx, err := psp.NewSA(peerKey, e.id)
	if err != nil {
		return err
	}
	rx, err := psp.NewSA(e.node.pspKey, e.id)
	if err != nil {
		return err
	}
	rx.ReplayWindowDisabled = true
	e.txSA, e.rxSA = tx, rx
	return nil
}

// Close tears down an endpoint pair (both sides must be closed by the
// caller via their own Close).
func (e *Endpoint) Close() {
	delete(e.node.conns, e.id)
	e.node.engine.UnregisterConn(e.id)
}

// flowHash derives the ECMP hash input from the connection and flow label,
// standing in for the (4-tuple, IPv6 flow label) hash real switches use.
// Changing the label's path bits repaths the flow.
func flowHash(conn uint32, label wire.FlowLabel) uint64 {
	return uint64(conn)<<32 ^ uint64(label)
}

func (e *Endpoint) String() string {
	return fmt.Sprintf("endpoint(conn=%d node=%d peer=%d)", e.id, e.node.host.ID, e.peer)
}
