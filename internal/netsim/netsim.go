// Package netsim simulates the Ethernet datacenter fabric the Falcon
// evaluation runs on: hosts with access links, output-queued switches,
// pluggable next-hop selection across equal-cost ports (internal/routing:
// flow-label ECMP by default, per-packet spray and least-queue adaptive as
// alternatives), and the switch-level impairments (random drop, reordering,
// link failure) the paper configures in §6.1.
//
// netsim is transport-agnostic: it moves Frames, which carry an opaque
// Payload. Falcon, RoCE and the software-transport baselines all ride the
// same fabric, so fabric behaviour can never silently favor one transport.
//
// The per-frame path is built to be steady-state allocation-free and
// integer-only (DESIGN.md §10): frames come from a Network-owned pool,
// port work is scheduled as pooled typed events rather than capture
// closures, switches route through a dense next-hop table indexed by
// NodeID, and serialization time is one integer multiply per frame
// (precomputed picoseconds per byte). With 4–6 port hops per packet the
// fabric dominates simulator event count, so this path bounds how far
// experiments scale.
package netsim

import (
	"fmt"
	"sync/atomic"
	"time"

	"falcon/internal/routing"
	"falcon/internal/sim"
)

// NodeID identifies a host in the network.
type NodeID int

// Frame is one packet on the wire. Frames on the hot path are pooled: see
// FramePool for the ownership rules (senders acquire via Host.NewFrame,
// the fabric releases on drop or after delivery; handlers must not retain
// the *Frame past return).
type Frame struct {
	Src, Dst NodeID
	// FlowHash is the ECMP hash input. Transports derive it from the
	// 4-tuple plus the IPv6 flow label, so changing the flow label
	// repaths the flow (PLB/PRR).
	FlowHash uint64
	// Size is the frame's wire size in bytes.
	Size int
	// Payload is the transport packet (e.g. *wire.Packet).
	Payload any
	// SentAt is stamped by Host.Send.
	SentAt sim.Time
	// Hops counts switch traversals, exported to transports that use a
	// hop-count congestion signal.
	Hops int
	// CE is the ECN congestion-experienced mark, set by any port whose
	// queue exceeds its marking threshold.
	CE bool

	// pooled marks frames owned by a FramePool; hand-built frames stay
	// with the garbage collector.
	pooled bool
}

// Handler receives frames delivered to a host.
type Handler interface {
	HandleFrame(f *Frame)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(*Frame)

// HandleFrame calls fn(f).
func (fn HandlerFunc) HandleFrame(f *Frame) { fn(f) }

// device is anything a port can deliver to. Every device is owned by one
// simulation partition (trivially partition 0 on a single-loop network);
// nodeSim reports the partition simulator its events must run on.
type device interface {
	receive(f *Frame)
	nodeSim() *sim.Simulator
}

// LinkConfig describes one direction of a link.
type LinkConfig struct {
	// GbpsRate is the link speed in gigabits per second. Rates are
	// quantized to a whole number of picoseconds per byte (8000/GbpsRate,
	// rounded): every rate of the form 8000/k Gb/s — including 1, 10,
	// 100 and 200 Gb/s — is represented exactly, and the maximum
	// representable rate is 8 Tb/s (1 ps/byte). See DESIGN.md §10 for the
	// integer time model.
	GbpsRate float64
	// PropDelay is the one-way propagation delay.
	PropDelay time.Duration
	// QueueBytes is the output queue limit; 0 means a generous default
	// (1 MiB). Frames arriving at a full queue are dropped.
	QueueBytes int
}

// DefaultQueueBytes is the output-queue limit used when LinkConfig leaves
// QueueBytes zero.
const DefaultQueueBytes = 1 << 20

// PortStats counts traffic through one directed port.
type PortStats struct {
	TxFrames    uint64
	TxBytes     uint64
	QueueDrops  uint64
	RandomDrops uint64
	// DownDrops counts frames dropped because the port was administratively
	// down (SetDown), kept separate from RandomDrops so outage experiments
	// do not inflate the random-loss line.
	DownDrops uint64
	// CorruptDrops counts frames dropped by an injected packet-corruption
	// window (SetCorruptProb): the wire delivered bytes but the FCS check
	// discarded them, so they are neither random fabric loss nor an
	// administrative outage.
	CorruptDrops  uint64
	Reordered     uint64
	ECNMarks      uint64
	MaxQueueBytes int
}

// Port is one directed egress: a serializing output queue feeding a
// propagation-delayed wire toward dst.
type Port struct {
	net *Network
	// sim is the source device's partition simulator: send, the drain tick
	// and all port state live there. dstSim is the destination device's;
	// when they differ the port is a partition boundary and deliveries are
	// handed across via sim.CrossAction (with the link's propagation delay
	// declared as conservative lookahead).
	sim    *sim.Simulator
	dstSim *sim.Simulator
	// pool recycles this partition's frames and port events; dstPool is
	// the destination partition's (where delivery events are released).
	pool    *fabricPool
	dstPool *fabricPool
	name    string
	// psPerByte is the precomputed serialization cost in integer
	// picoseconds per byte; the hot path multiplies instead of dividing.
	psPerByte int64
	prop      time.Duration
	limit     int
	dst       device

	queuedBytes int
	busyUntil   sim.Time
	// downDepth counts active SetDown(true) holds. The port drops frames
	// while downDepth > 0, so overlapping failure schedules (two Flaps, a
	// Flap inside a RackOutage, a storm campaign on top of either) nest:
	// the port comes back up only when every holder has released it, and a
	// second down can never double-count drops or re-arm a stale restore.
	downDepth int

	// Impairments, adjustable at runtime by experiments.
	dropProb     float64
	corruptProb  float64
	reorderProb  float64
	reorderDelay time.Duration

	// ecnThreshold marks frames CE when the queue exceeds this many
	// bytes (0 = ECN marking off).
	ecnThreshold int

	Stats PortStats
}

// psPerByte converts a Gbit/s link rate to the integer picoseconds one
// byte occupies on the wire: 8000/gbps, rounded to the nearest whole
// picosecond. The quantization is exact for every rate of the form 8000/k
// (1 Gb/s = 8000 ps/B, 100 Gb/s = 80 ps/B, 200 Gb/s = 40 ps/B, ...); other
// rates are represented to the nearest picosecond per byte. Rates above
// 8 Tb/s would quantize to zero wire time and are rejected.
func psPerByte(gbps float64) int64 {
	ps := int64(8000/gbps + 0.5)
	if ps < 1 {
		panic("netsim: link rate above 8 Tb/s exceeds the integer time model (minimum 1 ps/byte)")
	}
	return ps
}

func newPort(n *Network, name string, cfg LinkConfig, srcSim *sim.Simulator, dst device) *Port {
	if cfg.GbpsRate <= 0 {
		panic("netsim: link rate must be positive")
	}
	limit := cfg.QueueBytes
	if limit == 0 {
		limit = DefaultQueueBytes
	}
	dstSim := dst.nodeSim()
	p := &Port{
		net:       n,
		sim:       srcSim,
		dstSim:    dstSim,
		pool:      n.pools[srcSim.ShardIndex()],
		dstPool:   n.pools[dstSim.ShardIndex()],
		name:      name,
		psPerByte: psPerByte(cfg.GbpsRate),
		prop:      cfg.PropDelay,
		limit:     limit,
		dst:       dst,
	}
	if srcSim != dstSim {
		// Cross-partition link: its one-way propagation delay bounds how
		// soon a frame can affect the remote partition, so it is the safe
		// lookahead window. DeclareBoundary rejects zero-latency links —
		// co-locate such endpoints in one partition instead (the topology
		// builders keep racks intact for exactly this reason).
		n.group.DeclareBoundary(cfg.PropDelay)
	}
	n.ports = append(n.ports, p)
	return p
}

// Sim returns the partition simulator the port's source device runs on —
// the right place to schedule work that mutates this port (impairment
// schedules, degrade timers).
func (p *Port) Sim() *sim.Simulator { return p.sim }

// SetDropProb configures random egress drop with probability p, modeling the
// paper's "switch configured to randomly drop packets" experiments.
func (p *Port) SetDropProb(prob float64) { p.dropProb = prob }

// SetReorder configures random reordering: with probability prob a frame is
// held for extraDelay before delivery, so later frames overtake it.
func (p *Port) SetReorder(prob float64, extraDelay time.Duration) {
	p.reorderProb = prob
	p.reorderDelay = extraDelay
}

// SetDown marks the port failed; all frames are dropped (network outage for
// PRR experiments). Drops while down are counted in Stats.DownDrops, not
// Stats.RandomDrops.
//
// Down states nest: each SetDown(true) takes one hold on the port and each
// SetDown(false) releases one, so independent failure schedules targeting
// the same port (overlapping Flaps, a storm on top of an outage) compose —
// the port transmits again only after the last holder restores it. A
// release with no outstanding hold is ignored rather than underflowing.
func (p *Port) SetDown(down bool) {
	if down {
		p.downDepth++
		return
	}
	if p.downDepth > 0 {
		p.downDepth--
	}
}

// Down reports whether the port is administratively down (at least one
// SetDown(true) hold is outstanding).
func (p *Port) Down() bool { return p.downDepth > 0 }

// SetCorruptProb configures a packet-corruption window: with probability
// prob a frame that would have been transmitted is dropped after occupying
// the wire's attention, counted in Stats.CorruptDrops (the FCS-failure
// model chaos campaigns use — distinct from RandomDrops so corruption
// windows never inflate the random-loss line). prob 0 turns the window off
// and, like SetDropProb, costs no RNG draw on the hot path.
func (p *Port) SetCorruptProb(prob float64) { p.corruptProb = prob }

// SetECNThreshold enables ECN marking: frames that arrive to a queue
// deeper than bytes are marked congestion-experienced.
func (p *Port) SetECNThreshold(bytes int) { p.ecnThreshold = bytes }

// SetRateGbps changes the port speed at runtime (e.g. link downgrade).
//
// Semantics: a frame's departure time is committed at enqueue, so bytes
// already accepted by the serializer (everything up to busyUntil) keep the
// departure times computed under the old rate — a rate change never
// re-times in-flight serialization, and the drain events already scheduled
// for those bytes stay valid. The new rate takes effect, consistently with
// the busyUntil commitment point, for the next frame enqueued: it begins
// serializing at max(now, busyUntil) at the new speed. Like construction,
// the rate is quantized to whole picoseconds per byte.
func (p *Port) SetRateGbps(gbps float64) {
	if gbps <= 0 {
		panic("netsim: link rate must be positive")
	}
	p.psPerByte = psPerByte(gbps)
}

// QueueDelay returns the current queuing delay a newly arriving frame would
// experience before serialization begins.
func (p *Port) QueueDelay() time.Duration {
	now := p.sim.Now()
	if p.busyUntil <= now {
		return 0
	}
	return p.busyUntil.Sub(now)
}

// QueuedBytes returns the bytes currently awaiting serialization.
func (p *Port) QueuedBytes() int { return p.queuedBytes }

// send enqueues f for transmission. This is the fabric's hottest function:
// after the impairment checks it performs one integer multiply for the
// serialization time and schedules two pooled typed events (the
// departure-time drain tick and the propagation-delayed delivery) — no
// closures, no allocation, no floating point.
func (p *Port) send(f *Frame) {
	if p.downDepth > 0 {
		p.Stats.DownDrops++
		p.pool.frames.Release(f)
		return
	}
	if p.dropProb > 0 && p.sim.Rand().Float64() < p.dropProb {
		p.Stats.RandomDrops++
		p.pool.frames.Release(f)
		return
	}
	if p.corruptProb > 0 && p.sim.Rand().Float64() < p.corruptProb {
		p.Stats.CorruptDrops++
		p.pool.frames.Release(f)
		return
	}
	if p.queuedBytes+f.Size > p.limit {
		p.Stats.QueueDrops++
		p.pool.frames.Release(f)
		return
	}
	p.queuedBytes += f.Size
	if p.queuedBytes > p.Stats.MaxQueueBytes {
		p.Stats.MaxQueueBytes = p.queuedBytes
	}
	if p.ecnThreshold > 0 && p.queuedBytes > p.ecnThreshold {
		f.CE = true
		p.Stats.ECNMarks++
	}
	now := p.sim.Now()
	start := p.busyUntil
	if start < now {
		start = now
	}
	serialization := time.Duration(int64(f.Size) * p.psPerByte / 1000)
	departure := start.Add(serialization)
	p.busyUntil = departure
	p.Stats.TxFrames++
	p.Stats.TxBytes += uint64(f.Size)

	arrival := departure.Add(p.prop)
	if p.reorderProb > 0 && p.sim.Rand().Float64() < p.reorderProb {
		arrival = arrival.Add(p.reorderDelay)
		p.Stats.Reordered++
	}
	drain := p.pool.getEvent()
	drain.kind = evDrain
	drain.port = p
	drain.size = f.Size
	p.sim.AtAction(departure, drain)
	del := p.pool.getEvent()
	del.kind = evDeliver
	del.dst = p.dst
	del.frame = f
	if del.pool != nil {
		// The delivery executes on the destination partition, so the
		// event migrates to its pool (same pool on an intra-partition
		// link; nil stays nil for legacy heap events).
		del.pool = p.dstPool
	}
	p.sim.CrossAction(p.dstSim, arrival, del)
}

// Host is an endpoint with a single access link.
type Host struct {
	ID  NodeID
	net *Network
	// sim is the partition simulator this host's events run on (the
	// network's root simulator on a single-loop network); pool is that
	// partition's fabric free lists.
	sim     *sim.Simulator
	pool    *fabricPool
	handler Handler
	uplink  *Port
	tap func(f *Frame)
	// pauseDepth counts active SetPaused(true) holds, nesting like
	// Port.downDepth so overlapping endpoint faults (a pause inside a
	// crash window) compose without an early release.
	pauseDepth int
	// RxFrames counts delivered frames.
	RxFrames uint64
	// SentFrames counts frames this host injected into the fabric (frames
	// refused by a pause are not counted). Together with the per-port drop
	// counters and PauseRxDrops it closes the frame-conservation ledger:
	// after a drained run, sum(SentFrames) = sum(RxFrames) + every drop.
	SentFrames uint64
	// PauseTxDrops / PauseRxDrops count frames refused because the host
	// was paused (endpoint fault injection): transmissions that never
	// reached the uplink, and arrivals discarded before the handler.
	PauseTxDrops uint64
	PauseRxDrops uint64
}

// SetPaused freezes or thaws the host, modeling an endpoint-level fault
// (host stall, crash window, dead NIC): while paused the host neither
// transmits (Send drops, counted in PauseTxDrops) nor receives (arrivals
// are discarded before tap and handler, counted in PauseRxDrops). The
// fabric is untouched — in-flight frames still arrive and are eaten at
// the edge, exactly like a machine whose OS stopped scheduling the NIC
// driver. Transport state above the host is preserved, so recovery after
// unpause exercises the retransmission machinery end to end.
//
// Pauses nest like Port.SetDown: each SetPaused(true) takes a hold, each
// SetPaused(false) releases one (ignored at zero), and the host runs
// again only when every holder has released it.
func (h *Host) SetPaused(paused bool) {
	if paused {
		h.pauseDepth++
		return
	}
	if h.pauseDepth > 0 {
		h.pauseDepth--
	}
}

// Paused reports whether the host is currently frozen.
func (h *Host) Paused() bool { return h.pauseDepth > 0 }

// SetHandler installs the frame receiver. Must be called before traffic
// arrives.
func (h *Host) SetHandler(hd Handler) { h.handler = hd }

// SetTap installs a wire-level observer invoked for every frame delivered
// to this host, before the handler runs (nil detaches). Verification
// harnesses use it to fingerprint fabric arrivals; it must not mutate the
// frame or retain it past return.
func (h *Host) SetTap(fn func(f *Frame)) { h.tap = fn }

// Uplink returns the host's egress port (host -> first switch), e.g. to
// impair or re-rate it.
func (h *Host) Uplink() *Port { return h.uplink }

// Sim returns the partition simulator this host's events run on.
// Transports attached to the host must schedule their timers and
// continuations here — not on the network's root simulator — so that on a
// sharded run their work executes on the host's partition.
func (h *Host) Sim() *sim.Simulator { return h.sim }

// nodeSim implements device.
func (h *Host) nodeSim() *sim.Simulator { return h.sim }

// NewFrame returns a zeroed frame from the network's pool, owned by the
// caller until handed to Send. Transports on the steady-state path must
// use this (or Network.Frames) instead of allocating Frames so the fabric
// stays allocation-free; hand-built frames still work but are not
// recycled.
func (h *Host) NewFrame() *Frame { return h.pool.frames.Acquire() }

// Send transmits a frame from this host. f.Src is set to the host's ID.
// Ownership of a pooled frame passes to the fabric: the caller must not
// touch f after Send returns.
func (h *Host) Send(f *Frame) {
	if h.pauseDepth > 0 {
		h.PauseTxDrops++
		h.pool.frames.Release(f)
		return
	}
	f.Src = h.ID
	f.SentAt = h.sim.Now()
	f.Hops = 0
	if h.uplink == nil {
		panic(fmt.Sprintf("netsim: host %d has no uplink", h.ID))
	}
	h.SentFrames++
	h.uplink.send(f)
}

func (h *Host) receive(f *Frame) {
	if h.pauseDepth > 0 {
		h.PauseRxDrops++
		h.pool.frames.Release(f)
		return
	}
	h.RxFrames++
	if h.tap != nil {
		h.tap(f)
	}
	if h.handler != nil {
		h.handler.HandleFrame(f)
	}
	h.pool.frames.Release(f)
}

// Switch forwards frames by destination, selecting among equal-cost
// next-hop ports through a pluggable routing.Policy (ECMP by default;
// see SetPolicy and Network.SetRoutingPolicy).
type Switch struct {
	id  int
	net *Network
	// sim/pool: the partition simulator this switch's forwarding runs on
	// and that partition's fabric free lists (see Host.sim).
	sim  *sim.Simulator
	pool *fabricPool
	salt uint64
	// policy selects among equal-cost next hops. Policy values are
	// stateless; the mutable selection state lives in the dense state
	// array below so switching policies never carries stale state.
	policy routing.Policy
	// routes is the dense next-hop table indexed by destination NodeID
	// (host IDs are small dense integers, so a slice index replaces the
	// former per-hop map lookup).
	routes [][]*Port
	// state holds one policy word per destination NodeID, dense like
	// routes (the spray packet counter; zero for ECMP/adaptive).
	state []uint64
	// qview is the reused queue-depth view handed to the policy; a
	// pointer to this field converts to routing.QueueDepths without
	// allocating on the per-frame path.
	qview portQueues
	// RxFrames counts frames entering the switch.
	RxFrames uint64
}

// portQueues adapts an equal-cost port set to routing.QueueDepths.
type portQueues struct {
	ports []*Port
}

// QueuedBytes implements routing.QueueDepths.
func (q *portQueues) QueuedBytes(i int) int { return q.ports[i].queuedBytes }

// SetPolicy installs the routing policy for this switch and clears any
// per-destination policy state (spray counters restart from zero, so a
// policy change mid-build cannot leak state between policies).
func (sw *Switch) SetPolicy(p routing.Policy) {
	if p == nil {
		p = routing.ECMP{}
	}
	sw.policy = p
	for i := range sw.state {
		sw.state[i] = 0
	}
}

// Policy returns the switch's routing policy.
func (sw *Switch) Policy() routing.Policy { return sw.policy }

// Sim returns the partition simulator this switch's forwarding runs on.
func (sw *Switch) Sim() *sim.Simulator { return sw.sim }

// nodeSim implements device.
func (sw *Switch) nodeSim() *sim.Simulator { return sw.sim }

// addRoute registers ports as next hops toward dst.
func (sw *Switch) addRoute(dst NodeID, ports ...*Port) {
	for int(dst) >= len(sw.routes) {
		sw.routes = append(sw.routes, nil)
		sw.state = append(sw.state, 0)
	}
	sw.routes[dst] = append(sw.routes[dst], ports...)
}

// RouteTo returns the equal-cost port set toward dst (for impairment
// injection and telemetry).
func (sw *Switch) RouteTo(dst NodeID) []*Port {
	if int(dst) < 0 || int(dst) >= len(sw.routes) {
		return nil
	}
	return sw.routes[dst]
}

func (sw *Switch) receive(f *Frame) {
	sw.RxFrames++
	f.Hops++
	var ports []*Port
	d := int(f.Dst)
	if d >= 0 && d < len(sw.routes) {
		ports = sw.routes[d]
	}
	switch len(ports) {
	case 0:
		panic(fmt.Sprintf("netsim: switch %d has no route to host %d", sw.id, f.Dst))
	case 1:
		ports[0].send(f)
	default:
		sw.qview.ports = ports
		k := routing.Key{FlowHash: f.FlowHash, Salt: sw.salt, Src: uint64(f.Src), Dst: uint64(f.Dst)}
		ports[sw.policy.Select(k, len(ports), &sw.state[d], &sw.qview)].send(f)
	}
}

// defaultPolicy is the routing policy AddSwitch installs on new
// switches when the owning network has none set; cmd/falconbench
// -routing overrides it process-wide. Atomic because parallel
// experiment runners build networks from several goroutines.
var defaultPolicy atomic.Value // routing.Policy

// SetDefaultPolicy selects the routing policy networks built after the
// call install on their switches (existing networks are unaffected).
// nil restores ECMP. Tests that need a specific policy should use
// Network.SetRoutingPolicy or Switch.SetPolicy instead of mutating the
// process-wide default.
func SetDefaultPolicy(p routing.Policy) {
	if p == nil {
		p = routing.ECMP{}
	}
	defaultPolicy.Store(&p)
}

// DefaultPolicy reports the routing policy New currently gives to
// networks (ECMP unless SetDefaultPolicy changed it).
func DefaultPolicy() routing.Policy {
	if v, ok := defaultPolicy.Load().(*routing.Policy); ok {
		return *v
	}
	return routing.ECMP{}
}

// Network owns hosts and switches attached to one simulator, plus the
// fast-path pools recycling frames and port events.
//
// On a sharded simulator (sim.Sharded) the network is partition-aware:
// every device is assigned to one partition (round-robin by default, or
// explicitly via AddHostOn/AddSwitchOn — the topology builders keep each
// rack intact), each partition owns its own fabric pools, and ports whose
// endpoints live in different partitions declare their propagation delay
// as the group's conservative lookahead.
type Network struct {
	sim   *sim.Simulator
	group *sim.Sharded
	hosts []*Host
	switches []*Switch
	// ports records every directed port in creation order, so audits (the
	// chaos frame-conservation ledger) can fold over the whole fabric.
	ports  []*Port
	policy routing.Policy

	// pools holds one fabricPool per partition (exactly one on a
	// single-loop network); nextHostPart/nextSwitchPart drive the default
	// round-robin partition assignment.
	pools         []*fabricPool
	nextHostPart  int
	nextSwitchPart int
	legacy        bool
}

// New creates an empty network bound to s.
func New(s *sim.Simulator) *Network {
	n := &Network{sim: s, group: s.Group(), policy: DefaultPolicy()}
	parts := 1
	if n.group != nil {
		parts = n.group.Shards()
	}
	n.pools = make([]*fabricPool, parts)
	for i := range n.pools {
		n.pools[i] = &fabricPool{}
	}
	return n
}

// partSim returns partition i's simulator (the root simulator on a
// single-loop network).
func (n *Network) partSim(i int) *sim.Simulator {
	if n.group == nil {
		return n.sim
	}
	return n.group.Part(i)
}

// SetRoutingPolicy installs p (nil = ECMP) on every existing switch and
// on switches added later — the topology-wide knob experiments use to
// pit Falcon against spray or adaptive fabrics. Per-destination policy
// state is cleared on every switch (see Switch.SetPolicy).
func (n *Network) SetRoutingPolicy(p routing.Policy) {
	if p == nil {
		p = routing.ECMP{}
	}
	n.policy = p
	for _, sw := range n.switches {
		sw.SetPolicy(p)
	}
}

// RoutingPolicy returns the policy new switches receive.
func (n *Network) RoutingPolicy() routing.Policy { return n.policy }

// Sim returns the owning simulator.
func (n *Network) Sim() *sim.Simulator { return n.sim }

// Frames returns partition 0's frame pool, for senders not attached to a
// Host and for tests asserting pool behaviour (hosts draw from their own
// partition's pool via NewFrame).
func (n *Network) Frames() *FramePool { return &n.pools[0].frames }

// SetLegacyAlloc switches the fabric to the pre-pooling allocation
// behaviour: Acquire returns fresh garbage-collected frames and every port
// event is heap-allocated. Pure verification oracle, the pooling analogue
// of sim.SchedulerHeap — a run must produce byte-identical trace hashes
// with the flag on and off (asserted by the testkit pooled-equivalence
// suite), proving recycling is invisible to the protocol.
func (n *Network) SetLegacyAlloc(on bool) {
	n.legacy = on
	for _, fp := range n.pools {
		fp.legacy = on
		fp.frames.legacy = on
	}
}

// AddHost creates a host, assigning it to the next partition round-robin
// (partition 0 on a single-loop network). Its handler may be set later.
func (n *Network) AddHost() *Host {
	part := 0
	if n.group != nil {
		part = n.nextHostPart % len(n.pools)
		n.nextHostPart++
	}
	return n.AddHostOn(part)
}

// AddHostOn creates a host on partition part (mod the partition count, so
// topology builders can pass a rack index directly). On a single-loop
// network every host lands on the one partition.
func (n *Network) AddHostOn(part int) *Host {
	part %= len(n.pools)
	h := &Host{ID: NodeID(len(n.hosts)), net: n, sim: n.partSim(part), pool: n.pools[part]}
	n.hosts = append(n.hosts, h)
	return h
}

// Host returns the host with the given ID.
func (n *Network) Host(id NodeID) *Host { return n.hosts[int(id)] }

// Hosts returns all hosts.
func (n *Network) Hosts() []*Host { return n.hosts }

// Switches returns all switches in creation order.
func (n *Network) Switches() []*Switch { return n.switches }

// Ports returns every directed port of the network in creation order —
// the iteration surface for whole-fabric audits like the chaos ledger
// (sum of drops across every hop) and for sweeping impairments.
func (n *Network) Ports() []*Port { return n.ports }

// AddSwitch creates a switch running the network's routing policy,
// assigned to the next partition round-robin (see AddSwitchOn).
func (n *Network) AddSwitch() *Switch {
	part := 0
	if n.group != nil {
		part = n.nextSwitchPart % len(n.pools)
		n.nextSwitchPart++
	}
	return n.AddSwitchOn(part)
}

// AddSwitchOn creates a switch on partition part (mod the partition
// count), running the network's routing policy.
func (n *Network) AddSwitchOn(part int) *Switch {
	part %= len(n.pools)
	sw := &Switch{
		id:     len(n.switches),
		net:    n,
		sim:    n.partSim(part),
		pool:   n.pools[part],
		salt:   routing.Mix64(uint64(len(n.switches))*0x9e3779b97f4a7c15 + 1),
		policy: n.policy,
	}
	n.switches = append(n.switches, sw)
	return sw
}

// AttachHost wires host h to switch sw with symmetric link config, and
// installs the direct route sw -> h. Returns the downlink port (sw -> h) so
// callers can impair the "forward direction" of a path.
func (n *Network) AttachHost(h *Host, sw *Switch, cfg LinkConfig) *Port {
	up := newPort(n, fmt.Sprintf("h%d->sw%d", h.ID, sw.id), cfg, h.sim, sw)
	down := newPort(n, fmt.Sprintf("sw%d->h%d", sw.id, h.ID), cfg, sw.sim, h)
	h.uplink = up
	sw.addRoute(h.ID, down)
	return down
}

// ConnectSwitches creates a bidirectional inter-switch link and returns the
// two directed ports (a->b, b->a). Routes must be installed by the caller
// (or by a topology builder).
func (n *Network) ConnectSwitches(a, b *Switch, cfg LinkConfig) (ab, ba *Port) {
	ab = newPort(n, fmt.Sprintf("sw%d->sw%d", a.id, b.id), cfg, a.sim, b)
	ba = newPort(n, fmt.Sprintf("sw%d->sw%d", b.id, a.id), cfg, b.sim, a)
	return ab, ba
}
