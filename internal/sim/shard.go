package sim

// Sharded simulation: one run split into N partitions, each owning its own
// pending-event structure (timing wheel or heap), coordinated by a Sharded
// group. Two execution modes share the partitioned state:
//
//   - Merged (the -shards N default): partitions are drained through a
//     deterministic N-way merge on the coordinator goroutine. Every
//     partition holds its popped-but-undelivered head event; the merge
//     delivers the global (time, seq) minimum each step. Sequence numbers
//     come from one group-wide counter, the random stream is shared, and
//     Now() reads one group-wide clock, so a merged run is byte-identical
//     to the single-loop scheduler by construction — the equivalence the
//     testkit sweep suite and `make shardcheck` enforce.
//   - Parallel (experimental, behind SetDefaultShardParallel): partitions
//     execute concurrently inside conservative lookahead windows. The
//     window is derived from the minimum declared cross-partition link
//     latency L: a frame sent at time T on a link with latency >= L cannot
//     affect a remote partition before T+L, so all partitions may safely
//     deliver events with t < min(next event) + L before the next barrier.
//     Cross-partition work is staged in per-(src,dst) mailboxes and merged
//     at the barrier in (time, source partition, source seq) order, so a
//     parallel run is deterministic for a fixed seed and shard count — but
//     sequence numbers are per-partition, so its trace hashes are not
//     comparable to the single-loop stream. On a single-CPU host this mode
//     cannot win wall clock; it exists for multi-core machines and is
//     documented as experimental (DESIGN.md §15).
//
// Cross-partition scheduling goes through CrossAction; internal/netsim
// routes frame deliveries through it at link boundaries and declares each
// cross-partition link's propagation delay via DeclareBoundary. Zero-latency
// cross-partition links are rejected at declaration: they would collapse
// the lookahead window to nothing (and topology builders keep co-located
// devices — a rack's ToR and hosts — in one partition instead).

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// defaultShards is the partition count New gives to simulators (<= 1 means
// single-loop); cmd/falconbench -shards overrides it process-wide. Atomic
// because parallel experiment runners build simulators from several
// goroutines.
var defaultShards atomic.Int32

// defaultShardParallel selects the experimental windowed-parallel execution
// mode for sharded simulators built by New (cmd/falconbench -shardpar).
var defaultShardParallel atomic.Bool

// SetDefaultShards selects how many partitions New splits subsequently
// built simulators into (existing simulators are unaffected; n <= 1
// restores the single event loop). Tests that need a specific layout
// should use NewSharded instead of mutating the process-wide default.
func SetDefaultShards(n int) { defaultShards.Store(int32(n)) }

// DefaultShards reports the partition count New currently uses (minimum 1).
func DefaultShards() int {
	if n := defaultShards.Load(); n > 1 {
		return int(n)
	}
	return 1
}

// SetDefaultShardParallel switches sharded simulators built by New between
// the deterministic-merge mode (false, byte-identical to the single loop)
// and the experimental windowed-parallel mode (true, self-deterministic
// only). It has no effect while DefaultShards is 1.
func SetDefaultShardParallel(v bool) { defaultShardParallel.Store(v) }

// DefaultShardParallel reports the current process-wide parallel-mode
// selection.
func DefaultShardParallel() bool { return defaultShardParallel.Load() }

// ShardStats counts one partition's share of a sharded run. All counters
// are exact and deterministic for a fixed seed, shard count and mode, so
// telemetry exports them in the exact-determinism `shard` lake layer.
type ShardStats struct {
	// Delivered counts events this partition executed.
	Delivered uint64
	// Cross counts cross-partition schedules received by this partition:
	// direct inserts in merged mode, mailbox messages in parallel mode.
	Cross uint64
	// Windows counts lookahead windows this partition participated in
	// (parallel mode only).
	Windows uint64
	// IdleWindows counts windows in which this partition had no event to
	// deliver — the sync-stall measure of partition imbalance (parallel
	// mode only).
	IdleWindows uint64
}

// crossMsg is one staged cross-partition schedule awaiting the next
// barrier. The (at, src, seq) triple is the deterministic merge key: seq is
// the source partition's schedule counter at staging time, so messages from
// one source replay in staging order and ties across sources break on the
// stable partition index.
type crossMsg struct {
	at  Time
	act Action
	seq uint64
	src int32
}

func crossLess(a, b *crossMsg) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// Sharded coordinates the partitions of one sharded simulator. It is
// obtained from Simulator.Group on any partition (nil for single-loop
// simulators).
type Sharded struct {
	parts []*Simulator
	stats []ShardStats

	// seq is the group-wide schedule counter in merged mode; every
	// partition's seqp points here, reproducing the single loop's global
	// sequence assignment exactly.
	seq uint64
	// now is the group-wide clock in merged mode; every partition's nowp
	// points here, so Now() read from any partition (or the root handle
	// an experiment captured) is the global virtual time.
	now Time

	parallel bool
	// lookahead is the minimum declared cross-partition link latency —
	// the conservative window parallel mode may run ahead inside. Zero
	// (nothing declared) degrades to per-instant lockstep.
	lookahead Time

	// Parallel engine state: per-(src,dst) mailboxes (only src appends
	// during a window, only the coordinator drains between windows), a
	// reused merge buffer, and the window barrier channels.
	mail    [][]crossMsg
	scratch []crossMsg
	start   []chan Time
	done    chan struct{}
}

// NewSharded returns the root partition of a simulator split into n
// partitions backed by scheduler k. n <= 1 returns a plain single-loop
// simulator. With parallel false (the recommended mode) the partitions are
// drained by a deterministic merge and the run is byte-identical to the
// single loop; with parallel true they execute concurrently inside
// conservative lookahead windows (experimental — see the package notes at
// the top of this file).
func NewSharded(seed int64, k Scheduler, n int, parallel bool) *Simulator {
	if n <= 1 {
		return NewWithScheduler(seed, k)
	}
	g := &Sharded{
		parts:    make([]*Simulator, n),
		stats:    make([]ShardStats, n),
		parallel: parallel,
	}
	var shared *rand.Rand
	if !parallel {
		shared = rand.New(rand.NewSource(seed))
	}
	for i := range g.parts {
		p := &Simulator{sched: k, group: g, shard: i}
		if parallel {
			p.seqp = &p.seq
			p.nowp = &p.now
			// Partition 0 keeps the root seed so a 1-partition parallel
			// group would reproduce the single-loop stream; the others
			// draw from independent streams mixed from the seed.
			if i == 0 {
				p.rng = rand.New(rand.NewSource(seed))
			} else {
				p.rng = rand.New(rand.NewSource(seed ^ int64(splitmix64(uint64(i)))))
			}
		} else {
			p.seqp = &g.seq
			p.nowp = &g.now
			p.rng = shared
		}
		g.parts[i] = p
	}
	if parallel {
		g.mail = make([][]crossMsg, n*n)
		g.start = make([]chan Time, n)
		for i := range g.start {
			g.start[i] = make(chan Time, 1)
		}
		g.done = make(chan struct{}, n)
	}
	return g.parts[0]
}

// splitmix64 is the SplitMix64 finalizer, used to derive well-separated
// per-partition seeds in parallel mode.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Group returns the sharded-group coordinator this simulator is a
// partition of, or nil for a single-loop simulator.
func (s *Simulator) Group() *Sharded { return s.group }

// ShardIndex returns this simulator's partition index (0 for single-loop
// simulators and for the root partition).
func (s *Simulator) ShardIndex() int { return s.shard }

// Shards returns the partition count.
func (g *Sharded) Shards() int { return len(g.parts) }

// Part returns partition i's simulator. Components owned by partition i
// must schedule their internal work here so it executes on the right
// event loop.
func (g *Sharded) Part(i int) *Simulator { return g.parts[i] }

// Parallel reports whether the group runs the experimental
// windowed-parallel mode rather than the deterministic merge.
func (g *Sharded) Parallel() bool { return g.parallel }

// Stats returns the live per-partition counters, indexed by partition.
// Read it only while the group is not running.
func (g *Sharded) Stats() []ShardStats { return g.stats }

// Lookahead reports the conservative window: the minimum declared
// cross-partition link latency (0 until a boundary is declared).
func (g *Sharded) Lookahead() time.Duration { return time.Duration(g.lookahead) }

// DeclareBoundary registers a cross-partition link with one-way latency d,
// shrinking the group's conservative lookahead to the minimum declared.
// Zero or negative latency is rejected: such a link admits no safe window,
// so its endpoints must be placed in one partition instead (netsim's
// topology builders do exactly that for intra-rack links).
func (g *Sharded) DeclareBoundary(d time.Duration) {
	if d <= 0 {
		panic("sim: zero-latency cross-partition link; co-locate its endpoints in one partition")
	}
	if g.lookahead == 0 || Time(d) < g.lookahead {
		g.lookahead = Time(d)
	}
}

// CrossAction schedules a onto dst's partition from this partition's
// executing context — the only legal way to schedule across a partition
// boundary. Same-partition (and single-loop, and merged-mode) calls
// degrade to a direct AtAction; in parallel mode the action is staged in
// the source partition's mailbox and merged into dst at the next barrier
// in deterministic (time, source partition, source seq) order. Cross
// schedules carry no Timer: a cross-partition delivery cannot be
// cancelled.
func (s *Simulator) CrossAction(dst *Simulator, at Time, a Action) {
	g := s.group
	if dst == s || g == nil || g != dst.group {
		dst.AtAction(at, a)
		return
	}
	if !g.parallel {
		// Sequential merge: the coordinator goroutine owns all stats.
		g.stats[dst.shard].Cross++
		dst.AtAction(at, a)
		return
	}
	// Parallel: only this source goroutine may touch its own mailbox row;
	// the destination's Cross counter is folded in at the barrier.
	box := &g.mail[s.shard*len(g.parts)+dst.shard]
	*box = append(*box, crossMsg{at: at, act: a, seq: s.seq, src: int32(s.shard)})
	s.seq++
}

// ensureHead returns the partition's next live event, leaving it popped
// and held. A held event whose timer was stopped since the last merge step
// is reclaimed here, exactly when the single loop would have skipped it.
func (p *Simulator) ensureHead() *event {
	if e := p.held; e != nil {
		if !e.dead {
			return e
		}
		p.held = nil
		p.recycle(e)
	}
	p.held = p.pop()
	return p.held
}

// runMerged drains all partitions in exact global (time, seq) order on the
// calling goroutine. With bounded set, delivery stops after bound and the
// group clock advances to it.
func (g *Sharded) runMerged(bound Time, bounded bool) {
	parts := g.parts
	for {
		var best *Simulator
		var bestE *event
		for _, p := range parts {
			e := p.ensureHead()
			if e == nil {
				continue
			}
			if bestE == nil || eventLess(e, bestE) {
				best, bestE = p, e
			}
		}
		if bestE == nil || (bounded && bestE.at > bound) {
			break
		}
		best.held = nil
		g.stats[best.shard].Delivered++
		best.deliver(bestE)
	}
	if bounded {
		if g.now < bound {
			g.now = bound
		}
	}
	for _, p := range parts {
		p.syncTotal()
	}
}

// runParallel executes lookahead windows: all partitions concurrently
// deliver events strictly below the horizon, then a barrier merges the
// staged cross-partition work. Safety: the horizon is min(next event) +
// lookahead, and every cross-partition effect generated at t >= min(next
// event) arrives at t + link latency >= horizon, so no partition can
// receive work in its own past. With no declared boundary the horizon
// degrades to one instant past the minimum, which is always safe.
func (g *Sharded) runParallel(bound Time, bounded bool) {
	n := len(g.parts)
	for i := range g.parts {
		go g.worker(i)
	}
	for {
		var minNext Time
		any := false
		for _, p := range g.parts {
			if at, ok := p.peek(); ok && (!any || at < minNext) {
				minNext, any = at, true
			}
		}
		if !any || (bounded && minNext > bound) {
			break
		}
		horizon := minNext + 1
		if g.lookahead > 0 {
			horizon = minNext + g.lookahead
		}
		if bounded && horizon > bound+1 {
			horizon = bound + 1
		}
		for i := range g.start {
			g.start[i] <- horizon
		}
		for i := 0; i < n; i++ {
			<-g.done
		}
		g.drainMail()
	}
	for i := range g.start {
		g.start[i] <- -1
	}
	for i := 0; i < n; i++ {
		<-g.done
	}
	var max Time
	for _, p := range g.parts {
		if p.now > max {
			max = p.now
		}
	}
	if bounded && max < bound {
		max = bound
	}
	for _, p := range g.parts {
		p.now = max
		p.syncTotal()
	}
}

// worker is one partition's window loop: deliver everything strictly below
// each horizon received on the start channel, signal done, repeat until
// the negative shutdown sentinel.
func (g *Sharded) worker(i int) {
	p := g.parts[i]
	st := &g.stats[i]
	for {
		h := <-g.start[i]
		if h < 0 {
			g.done <- struct{}{}
			return
		}
		worked := false
		for {
			at, ok := p.peek()
			if !ok || at >= h {
				break
			}
			p.step()
			st.Delivered++
			worked = true
		}
		st.Windows++
		if !worked {
			st.IdleWindows++
		}
		g.done <- struct{}{}
	}
}

// drainMail merges every staged cross-partition message into its
// destination partition in (time, source partition, source seq) order —
// the stable deterministic merge rule — assigning destination-local
// sequence numbers in that order. Mailboxes and the merge buffer keep
// their capacity across barriers, so steady-state handoff allocates
// nothing.
func (g *Sharded) drainMail() {
	n := len(g.parts)
	for dst := 0; dst < n; dst++ {
		buf := g.scratch[:0]
		for src := 0; src < n; src++ {
			box := &g.mail[src*n+dst]
			buf = append(buf, *box...)
			*box = (*box)[:0]
		}
		if len(buf) == 0 {
			continue
		}
		sortCross(buf)
		g.stats[dst].Cross += uint64(len(buf))
		p := g.parts[dst]
		for k := range buf {
			if buf[k].at < p.now {
				panic(fmt.Sprintf("sim: cross-partition message at %v reached partition %d past its clock %v (lookahead violated)",
					buf[k].at, dst, p.now))
			}
			p.AtAction(buf[k].at, buf[k].act)
			buf[k].act = nil
		}
		g.scratch = buf[:0]
	}
}

// sortCross sorts staged messages by the deterministic merge key without
// allocating: quicksort with median-of-three pivots, insertion sort for
// small runs (the crossMsg sibling of wheel.go's sortEvents).
func sortCross(a []crossMsg) {
	for len(a) > 12 {
		lo, mid, hi := 0, len(a)/2, len(a)-1
		if crossLess(&a[mid], &a[lo]) {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if crossLess(&a[hi], &a[lo]) {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if crossLess(&a[hi], &a[mid]) {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		i, j := lo, hi
		for i <= j {
			for crossLess(&a[i], &pivot) {
				i++
			}
			for crossLess(&pivot, &a[j]) {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			sortCross(a[lo : j+1])
			a = a[i:]
		} else {
			sortCross(a[i:])
			a = a[:j+1]
		}
	}
	for i := 1; i < len(a); i++ {
		e := a[i]
		j := i - 1
		for j >= 0 && crossLess(&e, &a[j]) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = e
	}
}

// run dispatches a group run to the active mode.
func (g *Sharded) run(bound Time, bounded bool) {
	if g.parallel {
		g.runParallel(bound, bounded)
		return
	}
	g.runMerged(bound, bounded)
}

// pending sums live events across partitions (held heads included — they
// are popped but not yet delivered).
func (g *Sharded) pending() int {
	total := 0
	for _, p := range g.parts {
		total += p.live
	}
	return total
}

// processed sums delivered events across partitions.
func (g *Sharded) processed() uint64 {
	var total uint64
	for _, p := range g.parts {
		total += p.processed
	}
	return total
}
